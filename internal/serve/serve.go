// Package serve is the bandit-as-a-service layer: a long-lived decision
// daemon that holds per-device Smart EXP3 policy state for many concurrent
// device sessions and answers Select(deviceID, availableArms) /
// Feedback(deviceID, arm, reward) at wire speed.
//
// The package splits the problem the same way the simulator splits
// Engine/Workspace: the Store owns the hot per-device policy state (sharded
// across GOMAXPROCS-scaled shards, each under its own mutex, with retired
// policies pooled through core.Reinitializer so device churn is
// allocation-free warm), while Server/Client own the framed-gob transport,
// reusing internal/cluster's frame codec so the two daemons share one wire
// discipline.
//
// Determinism contract: a Store is a pure function of (Algorithm, Policy
// config, Seed) and the sequence of requests applied to it. Each device
// draws from its own generator seeded rngutil.ChildSeed(Seed,
// int64(deviceID)), so devices are independent sub-streams and concurrent
// traffic to different devices cannot perturb one another. Snapshot captures
// every active device's policy state and generator cursor verbatim (see
// internal/core.PolicyState); restoring and replaying is byte-identical to
// never having restarted.
//
// Select/Feedback pairing: the store answers a repeated Select for a device
// with an unanswered selection idempotently (same arm, same slot) as long
// as the arm set is unchanged, so a client that lost a response can simply
// retry. A Select that changes the arm set while a selection is unanswered
// settles the outstanding slot as zero gain first — the policy's
// Select/Observe pairing invariant survives lost feedback. Feedback must
// name both the arm and the slot of the outstanding selection; anything
// else is counted in Dropped and ignored. The slot is the recovery
// cornerstone: it advances only when a selection settles, so a feedback
// batch resent after a reconnect (the client cannot know whether a frame
// cut mid-write was consumed) applies at most once even when the same arm
// was re-chosen in between.
//
// Recovery contract (client side): a transport failure — connection cut,
// frame corrupted (surfaced by the CRC in the frame codec), stall past the
// frame timeout — is invisible to the caller. The Client redials with
// capped exponential backoff, replays the handshake, resends
// written-but-unconfirmed feedback (slot-deduplicated by the store), and
// re-issues the in-flight Select (answered idempotently). Only handshake
// rejections are permanent. A session run through an adversarial network
// is therefore decision-identical to a clean one — the property
// chaos_test.go drives with internal/chaos. Clients that must answer even
// with the daemon gone can set ClientOptions.Fallback to degrade to a
// local in-process store between probes.
//
// Eviction: with Config.EvictAfter set, EvictIdle retires device sessions
// whose last Select or applied Feedback is older than the TTL — the
// sessions of clients that vanished without Release. Eviction is
// operationally invisible to determinism: an evicted device that returns
// re-joins from its per-device root seed exactly like a released one, and
// idle bookkeeping stays out of snapshots. Config.OnEvict receives each
// evicted session's final state for callers that archive or audit.
package serve

import (
	"math/rand"

	"smartexp3/internal/core"
	"smartexp3/internal/rngutil"
)

// device is one device session's policy state. Retired devices keep their
// buffers on the shard free list; acquire re-seeds the generator and
// Reinits the policy in place, so churn costs no allocation warm.
type device struct {
	policy  *core.SmartEXP3
	src     *rngutil.Source
	rng     *rand.Rand
	pending int    // global arm id awaiting Feedback, -1 when none
	slot    uint64 // id of the pending (or next) selection; advances as slots settle
	// lastTouch is the Config.Clock reading (UnixNano) of the device's most
	// recent Select or applied Feedback. It is activity bookkeeping, not
	// decision state: it stays out of snapshots so encoded bytes remain a
	// pure function of the request history, and it is only maintained when
	// eviction is enabled so the disabled warm path pays nothing.
	lastTouch int64
}

// RouteKey maps a device id to its position in the routing-key space —
// the coordinate the fleet layer partitions. Stripe ranges, ownership
// checks and SnapshotRange bounds all speak keys, not raw ids: the mix
// spreads sequential ids (the common assignment scheme) uniformly, so
// contiguous key ranges carry statistically even device populations.
// The same mix routes ids to store shards (low bits) — the two uses are
// independent because stripes cut on high bits.
func RouteKey(deviceID uint64) uint64 { return mix64(deviceID) }

// mix64 is SplitMix64's output function, used to spread device ids across
// shards; sequential ids (the common assignment scheme) land on distinct
// shards instead of sharing one.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// equalArms reports whether a strictly ascending request arm set equals the
// policy's current availability (which core keeps ascending).
func equalArms(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ascendingArms reports whether arms is strictly ascending — the request
// normal form. Requiring it at the boundary keeps the hot path free of
// sorting and makes duplicate arms a hard error instead of silent policy
// corruption.
func ascendingArms(arms []int) bool {
	for i := 1; i < len(arms); i++ {
		if arms[i] <= arms[i-1] {
			return false
		}
	}
	return true
}
