package serve

import (
	"strings"
	"testing"
	"time"

	"smartexp3/internal/core"
)

// reward is the tests' deterministic environment: a fixed arm-quality
// ordering perturbed per device and slot, so different devices learn
// different favorites and scripts are reproducible.
func reward(device uint64, arm, slot int) float64 {
	x := mix64(device ^ uint64(arm)*0x9e37 ^ uint64(slot)*0x85eb)
	base := float64(arm%5+1) / 6
	noise := float64(x%1000) / 10000
	r := base + noise
	if r > 1 {
		r = 1
	}
	return r
}

func newTestStore(t testing.TB, cfg Config) *Store {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// drive runs a fixed select/feedback script and returns every arm chosen.
func drive(t testing.TB, s *Store, devices []uint64, arms []int, slots int) []int {
	t.Helper()
	var out []int
	for slot := 0; slot < slots; slot++ {
		for _, dev := range devices {
			arm, sl, err := s.Select(dev, arms)
			if err != nil {
				t.Fatal(err)
			}
			if !s.Feedback(dev, arm, sl, reward(dev, arm, slot)) {
				t.Fatalf("slot %d device %d: feedback for pending arm %d not applied", slot, dev, arm)
			}
			out = append(out, arm)
		}
	}
	return out
}

func TestStoreSelectFeedbackRoundTrips(t *testing.T) {
	s := newTestStore(t, Config{})
	devices := []uint64{1, 2, 3}
	arms := []int{10, 20, 30}
	got := drive(t, s, devices, arms, 200)
	if len(got) != 600 {
		t.Fatalf("drove %d selections, want 600", len(got))
	}
	for i, arm := range got {
		if arm != 10 && arm != 20 && arm != 30 {
			t.Fatalf("selection %d returned arm %d outside the arm set", i, arm)
		}
	}
	if n := s.Devices(); n != 3 {
		t.Fatalf("store tracks %d devices, want 3", n)
	}
	if d := s.Dropped(); d != 0 {
		t.Fatalf("clean script dropped %d reports", d)
	}
}

// TestStoreDeterministicAcrossShardCounts pins the sharding invariant:
// shard count is a concurrency knob, never a behavior knob. The same script
// against 1 shard and 64 shards must select identically.
func TestStoreDeterministicAcrossShardCounts(t *testing.T) {
	devices := []uint64{7, 1 << 40, 99999, 3}
	arms := []int{0, 1, 2, 5}
	a := drive(t, newTestStore(t, Config{Shards: 1}), devices, arms, 150)
	b := drive(t, newTestStore(t, Config{Shards: 64}), devices, arms, 150)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("selection %d: 1-shard store chose %d, 64-shard store chose %d", i, a[i], b[i])
		}
	}
}

// TestStoreDevicesAreIndependentStreams pins the child-seed contract:
// adding traffic for new devices must not perturb an existing device's
// decision stream.
func TestStoreDevicesAreIndependentStreams(t *testing.T) {
	arms := []int{1, 2, 3}
	alone := drive(t, newTestStore(t, Config{}), []uint64{5}, arms, 120)
	crowded := newTestStore(t, Config{})
	var got []int
	for slot := 0; slot < 120; slot++ {
		for _, dev := range []uint64{11, 5, 23} {
			arm, sl, err := crowded.Select(dev, arms)
			if err != nil {
				t.Fatal(err)
			}
			crowded.Feedback(dev, arm, sl, reward(dev, arm, slot))
			if dev == 5 {
				got = append(got, arm)
			}
		}
	}
	for i := range alone {
		if alone[i] != got[i] {
			t.Fatalf("slot %d: device 5 chose %d alone but %d in a crowd", i, alone[i], got[i])
		}
	}
}

func TestStoreSelectIsIdempotentUntilFeedback(t *testing.T) {
	s := newTestStore(t, Config{})
	arms := []int{1, 2, 3}
	first, firstSlot, err := s.Select(9, arms)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, slotAgain, err := s.Select(9, arms)
		if err != nil {
			t.Fatal(err)
		}
		if again != first || slotAgain != firstSlot {
			t.Fatalf("retry %d re-selected arm %d slot %d, want the pending arm %d slot %d",
				i, again, slotAgain, first, firstSlot)
		}
	}
	if d := s.Dropped(); d != 0 {
		t.Fatalf("idempotent retries counted as %d drops", d)
	}
	if !s.Feedback(9, first, firstSlot, 0.5) {
		t.Fatal("feedback for the pending arm was not applied")
	}
	if s.Feedback(9, first, firstSlot, 0.5) {
		t.Fatal("duplicate feedback was applied twice")
	}
	if d := s.Dropped(); d != 1 {
		t.Fatalf("duplicate feedback counted as %d drops, want 1", d)
	}
	// The next selection reuses the arm space but not the slot: stale
	// feedback quoting the settled slot must not credit it, even when the
	// policy picks the same arm again.
	next, nextSlot, err := s.Select(9, arms)
	if err != nil {
		t.Fatal(err)
	}
	if nextSlot == firstSlot {
		t.Fatalf("new selection reused slot %d", firstSlot)
	}
	if s.Feedback(9, next, firstSlot, 0.5) {
		t.Fatal("feedback quoting a settled slot was applied")
	}
	if !s.Feedback(9, next, nextSlot, 0.5) {
		t.Fatal("feedback for the new slot was not applied")
	}
}

func TestStoreSelectSettlesAbandonedSlotOnArmChange(t *testing.T) {
	s := newTestStore(t, Config{})
	if _, _, err := s.Select(4, []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// No feedback arrives; the device moves and the arm set changes.
	arm, sl, err := s.Select(4, []int{2, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if arm != 2 && arm != 3 && arm != 7 {
		t.Fatalf("re-selection returned arm %d outside the new arm set", arm)
	}
	if sl != 1 {
		t.Fatalf("abandoned slot did not advance the cursor: slot %d, want 1", sl)
	}
	if d := s.Dropped(); d != 1 {
		t.Fatalf("abandoned slot counted as %d drops, want 1", d)
	}
	if !s.Feedback(4, arm, sl, 0.9) {
		t.Fatal("feedback after the arm change was not applied")
	}
}

func TestStoreValidatesRequests(t *testing.T) {
	s := newTestStore(t, Config{MaxArms: 4})
	cases := []struct {
		name string
		arms []int
		want string
	}{
		{"empty", nil, "empty arm set"},
		{"descending", []int{3, 1}, "strictly ascending"},
		{"duplicate", []int{1, 1, 2}, "strictly ascending"},
		{"too many", []int{1, 2, 3, 4, 5}, "exceeds"},
	}
	for _, tc := range cases {
		if _, _, err := s.Select(1, tc.arms); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: got error %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if n := s.Devices(); n != 0 {
		t.Fatalf("rejected requests created %d device sessions", n)
	}
	if _, err := NewStore(Config{Algorithm: core.AlgGreedy}); err == nil {
		t.Fatal("NewStore accepted an algorithm without exportable state")
	}
}

func TestStoreReleasePoolsAndReseeds(t *testing.T) {
	s := newTestStore(t, Config{Shards: 1})
	arms := []int{1, 2, 3}
	first := drive(t, s, []uint64{77}, arms, 50)
	if !s.Release(77) {
		t.Fatal("release of an active device returned false")
	}
	if s.Release(77) {
		t.Fatal("double release returned true")
	}
	if n := s.Devices(); n != 0 {
		t.Fatalf("store tracks %d devices after release", n)
	}
	// The same id re-joins: the pooled policy must restart from the
	// device's root seed, exactly as the first session did.
	second := drive(t, s, []uint64{77}, arms, 50)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("slot %d: fresh session chose %d, pooled re-acquire chose %d", i, first[i], second[i])
		}
	}
}

func TestStoreApplyBatchLocksEachShardOnce(t *testing.T) {
	s := newTestStore(t, Config{Shards: 4})
	devices := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	arms := []int{1, 2}
	items := make([]FeedbackItem, 0, len(devices))
	for _, dev := range devices {
		arm, sl, err := s.Select(dev, arms)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, FeedbackItem{Device: dev, Arm: arm, Slot: sl, Reward: 0.5})
	}
	// One report for a device that never selected: it must be counted
	// dropped, not applied.
	items = append(items, FeedbackItem{Device: 999, Arm: 1, Reward: 0.5})
	if applied := s.ApplyBatch(items); applied != len(devices) {
		t.Fatalf("batch applied %d items, want %d", applied, len(devices))
	}
	if d := s.Dropped(); d != 1 {
		t.Fatalf("batch counted %d drops, want 1", d)
	}
}

// TestStoreWarmSelectDoesNotAllocate is the tentpole's perf contract: after
// a device's first slot, the Select/Feedback hot path performs no heap
// allocation (the benchmark gate in BENCH_runner.json enforces the same
// bound over time).
func TestStoreWarmSelectDoesNotAllocate(t *testing.T) {
	s := newTestStore(t, Config{Shards: 2})
	arms := []int{1, 2, 3, 4}
	drive(t, s, []uint64{6}, arms, 300) // warm: past explore-first and pool growth
	slot := 1000
	allocs := testing.AllocsPerRun(200, func() {
		arm, sl, err := s.Select(6, arms)
		if err != nil {
			t.Fatal(err)
		}
		s.Feedback(6, arm, sl, reward(6, arm, slot))
		slot++
	})
	if allocs > 1 {
		t.Fatalf("warm Select+Feedback allocates %.1f times per op, want ≤ 1", allocs)
	}
}

// TestStoreChurnIsAllocationFreeWarm pins the Reinitializer pooling: once a
// shard's pool has a retiree, a join-leave cycle allocates nothing.
func TestStoreChurnIsAllocationFreeWarm(t *testing.T) {
	s := newTestStore(t, Config{Shards: 1})
	arms := []int{1, 2, 3}
	// Prime the pool with one retiree.
	if _, _, err := s.Select(1, arms); err != nil {
		t.Fatal(err)
	}
	s.Release(1)
	allocs := testing.AllocsPerRun(100, func() {
		arm, sl, err := s.Select(2, arms)
		if err != nil {
			t.Fatal(err)
		}
		s.Feedback(2, arm, sl, 0.5)
		s.Release(2)
	})
	if allocs > 0 {
		t.Fatalf("warm churn allocates %.1f times per join-leave cycle, want 0", allocs)
	}
}

// TestStoreEvictIdleRetiresStaleDevices pins the TTL sweep: only devices
// idle past EvictAfter go, OnEvict sees their final state first, and a
// re-joining evicted device replays deterministically from its root seed —
// eviction is exactly a Release the client never sent.
func TestStoreEvictIdleRetiresStaleDevices(t *testing.T) {
	now := time.Unix(1000, 0)
	var evicted []DeviceSnapshot
	s := newTestStore(t, Config{
		Shards:     2,
		EvictAfter: time.Minute,
		Clock:      func() time.Time { return now },
		OnEvict:    func(ds DeviceSnapshot) { evicted = append(evicted, ds) },
	})
	arms := []int{1, 2, 3}
	first := drive(t, s, []uint64{10}, arms, 30)
	// Leave device 10 with an unanswered selection crossing the eviction.
	if _, _, err := s.Select(10, arms); err != nil {
		t.Fatal(err)
	}
	now = now.Add(50 * time.Second)
	drive(t, s, []uint64{11}, arms, 1) // device 11 stays fresh
	if n := s.EvictIdle(); n != 0 {
		t.Fatalf("sweep evicted %d devices before the TTL", n)
	}
	now = now.Add(20 * time.Second) // device 10 idle 70s, device 11 idle 20s
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("sweep evicted %d devices, want 1", n)
	}
	if got := s.Evicted(); got != 1 {
		t.Fatalf("Evicted() = %d, want 1", got)
	}
	if n := s.Devices(); n != 1 {
		t.Fatalf("store tracks %d devices after eviction, want 1", n)
	}
	if len(evicted) != 1 || evicted[0].Device != 10 {
		t.Fatalf("OnEvict saw %+v, want device 10", evicted)
	}
	if evicted[0].Pending < 0 {
		t.Fatal("OnEvict lost the unanswered selection")
	}
	if err := evicted[0].State.Validate(); err != nil {
		t.Fatalf("OnEvict delivered invalid policy state: %v", err)
	}
	// The evicted id re-joins: same script, same decisions as the first
	// session — the determinism contract survives the eviction.
	second := drive(t, s, []uint64{10}, arms, 30)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("slot %d: pre-eviction session chose %d, re-joined session chose %d", i, first[i], second[i])
		}
	}
}

// TestStoreEvictIdleDisabledIsNoOp pins the zero-cost default: without
// EvictAfter the sweep does nothing and no idle bookkeeping runs.
func TestStoreEvictIdleDisabledIsNoOp(t *testing.T) {
	s := newTestStore(t, Config{})
	drive(t, s, []uint64{1, 2}, []int{1, 2}, 5)
	if n := s.EvictIdle(); n != 0 {
		t.Fatalf("disabled sweep evicted %d devices", n)
	}
	if n := s.Devices(); n != 2 {
		t.Fatalf("store tracks %d devices, want 2", n)
	}
}

// TestStoreWarmSelectDoesNotAllocateWithEviction holds the zero-alloc warm
// path with idle bookkeeping enabled: the lastTouch stamp must not cost an
// allocation.
func TestStoreWarmSelectDoesNotAllocateWithEviction(t *testing.T) {
	s := newTestStore(t, Config{Shards: 2, EvictAfter: time.Hour})
	arms := []int{1, 2, 3, 4}
	drive(t, s, []uint64{6}, arms, 300)
	slot := 1000
	allocs := testing.AllocsPerRun(200, func() {
		arm, sl, err := s.Select(6, arms)
		if err != nil {
			t.Fatal(err)
		}
		s.Feedback(6, arm, sl, reward(6, arm, slot))
		slot++
	})
	if allocs > 0 {
		t.Fatalf("warm Select+Feedback with eviction enabled allocates %.1f times per op, want 0", allocs)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Algorithm != core.AlgSmartEXP3 {
		t.Fatalf("default algorithm %v, want Smart EXP3", cfg.Algorithm)
	}
	if cfg.Shards <= 0 || cfg.Shards&(cfg.Shards-1) != 0 {
		t.Fatalf("default shard count %d is not a positive power of two", cfg.Shards)
	}
	if got := (Config{Shards: 5}).withDefaults().Shards; got != 8 {
		t.Fatalf("Shards 5 rounds to %d, want 8", got)
	}
	if cfg.MaxArms != defaultMaxArms {
		t.Fatalf("default MaxArms %d, want %d", cfg.MaxArms, defaultMaxArms)
	}
	if cfg.Policy.Beta != core.DefaultConfig().Beta {
		t.Fatalf("zero Policy did not resolve to DefaultConfig")
	}
}

// TestApplyBatchWarmDoesNotAllocate is the AllocsPerRun gate behind the
// //repolint:allocfree marker on ApplyBatch: settling buffered feedback for
// warm devices must not allocate, however the batch interleaves shards.
func TestApplyBatchWarmDoesNotAllocate(t *testing.T) {
	s := newTestStore(t, Config{Shards: 4})
	arms := []int{1, 2, 3, 4}
	devices := []uint64{3, 11, 42}
	drive(t, s, devices, arms, 300)
	items := make([]FeedbackItem, len(devices))
	slot := 1000
	allocs := testing.AllocsPerRun(200, func() {
		for i, id := range devices {
			arm, sl, err := s.Select(id, arms)
			if err != nil {
				t.Fatal(err)
			}
			items[i] = FeedbackItem{Device: id, Arm: arm, Slot: sl, Reward: reward(id, arm, slot)}
		}
		slot++
		if n := s.ApplyBatch(items); n != len(items) {
			t.Fatalf("ApplyBatch applied %d of %d items", n, len(items))
		}
	})
	if allocs > 0 {
		t.Fatalf("warm ApplyBatch allocates %.2f objects per batch, want 0", allocs)
	}
}
