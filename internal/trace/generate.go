package trace

import (
	"fmt"
	"math"
	"math/rand"

	"smartexp3/internal/rngutil"
)

// The paper's traces are 25 minutes of 15-second slots.
const (
	paperSlots       = 100
	paperSlotSeconds = 15.0
)

// Style selects which of the paper's four trace-pair structures to
// synthesize. The structures matter for Table VI's conclusion: Smart EXP3
// outperforms Greedy whenever no single network is always best (pairs 1, 3
// and 4); Greedy is marginally better when one network dominates throughout
// (pair 2).
type Style int

// The four pair styles of Section VI-B.
const (
	// StyleAlternating: WiFi steady, cellular alternating between good and
	// poor regimes (trace pair 1).
	StyleAlternating Style = iota + 1
	// StyleCellularDominant: cellular always better than WiFi (trace pair 2).
	StyleCellularDominant
	// StyleCrossover: WiFi good then poor, cellular poor then good, with a
	// mid-trace crossover (trace pair 3).
	StyleCrossover
	// StyleBothVolatile: both networks regime-switch out of phase (trace
	// pair 4).
	StyleBothVolatile
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StyleAlternating:
		return "alternating-cellular"
	case StyleCellularDominant:
		return "cellular-dominant"
	case StyleCrossover:
		return "crossover"
	case StyleBothVolatile:
		return "both-volatile"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Generate synthesizes a trace pair of the given style. Rates follow a
// mean-reverting random walk around a style-specific, possibly
// regime-switching mean, clamped to the 0.2–6 Mbps band the paper's traces
// occupy (Figure 12 plots 0–6 Mbps).
func Generate(style Style, slots int, seed int64) Pair {
	if slots <= 0 {
		slots = paperSlots
	}
	rng := rngutil.NewChild(seed, int64(style))
	name := fmt.Sprintf("trace-%d-%s", int(style), style)
	p := Pair{
		Name:     name,
		WiFi:     Trace{Name: name + "/wifi", SlotSeconds: paperSlotSeconds},
		Cellular: Trace{Name: name + "/cellular", SlotSeconds: paperSlotSeconds},
	}

	wifiMean, cellMean := meanSchedules(style, slots, rng)
	p.WiFi.Rates = walk(rng, wifiMean, wifiVolatility(style))
	p.Cellular.Rates = walk(rng, cellMean, cellVolatility(style))

	if style == StyleCellularDominant {
		// Pair 2's defining property: the cellular network is better in
		// every single slot.
		for t := range p.Cellular.Rates {
			if p.Cellular.Rates[t] < p.WiFi.Rates[t]+0.5 {
				p.Cellular.Rates[t] = p.WiFi.Rates[t] + 0.5
			}
		}
	}
	return p
}

// PaperPairs returns the four pairs evaluated in Table VI, at the paper's
// horizon (100 slots of 15 s).
func PaperPairs(seed int64) []Pair {
	styles := []Style{StyleAlternating, StyleCellularDominant, StyleCrossover, StyleBothVolatile}
	pairs := make([]Pair, len(styles))
	for i, s := range styles {
		pairs[i] = Generate(s, paperSlots, seed)
	}
	return pairs
}

// meanSchedules builds the per-slot mean bit rate of each network.
func meanSchedules(style Style, slots int, rng *rand.Rand) (wifi, cell []float64) {
	wifi = make([]float64, slots)
	cell = make([]float64, slots)
	switch style {
	case StyleAlternating:
		fill(wifi, 3.6)
		regime(cell, rng, 4.9, 1.4, 18)
	case StyleCellularDominant:
		fill(wifi, 2.8)
		fill(cell, 5.1)
	case StyleCrossover:
		for t := range wifi {
			if t < slots/2 {
				wifi[t], cell[t] = 4.6, 1.4
			} else {
				wifi[t], cell[t] = 1.2, 4.8
			}
		}
	case StyleBothVolatile:
		// Anti-phase regimes on a shared clock: the networks take turns
		// being the good choice, so whichever one a one-shot learner locks
		// onto spends long stretches as the wrong pick.
		antiPhase(wifi, cell, rng, 5.0, 1.2, 15)
	}
	return wifi, cell
}

func wifiVolatility(style Style) float64 {
	if style == StyleBothVolatile {
		return 0.45
	}
	return 0.3
}

func cellVolatility(style Style) float64 {
	// The paper notes that bit rates "fluctuate, especially for the
	// cellular network".
	return 0.55
}

// walk produces a mean-reverting random walk around the per-slot means.
func walk(rng *rand.Rand, means []float64, sigma float64) []float64 {
	const (
		revert  = 0.35
		minRate = 0.2
		maxRate = 6.0
	)
	out := make([]float64, len(means))
	cur := means[0] + sigma*rng.NormFloat64()
	for t, mu := range means {
		cur += revert*(mu-cur) + sigma*rng.NormFloat64()
		cur = math.Min(math.Max(cur, minRate), maxRate)
		out[t] = cur
	}
	return out
}

// antiPhase fills two mean schedules that swap the good and bad levels at
// shared flip times; each regime lasts between dwell and 2·dwell slots.
func antiPhase(first, second []float64, rng *rand.Rand, good, bad float64, dwell int) {
	firstIsGood := true
	left := dwell + rng.Intn(dwell+1)
	for t := range first {
		if left == 0 {
			firstIsGood = !firstIsGood
			left = dwell + rng.Intn(dwell+1)
		}
		if firstIsGood {
			first[t], second[t] = good, bad
		} else {
			first[t], second[t] = bad, good
		}
		left--
	}
}

// regime fills means with a two-state process alternating between hi and lo
// with geometric dwell times around the given mean dwell.
func regime(means []float64, rng *rand.Rand, a, b float64, dwell int) {
	cur, other := a, b
	left := 1 + rng.Intn(2*dwell)
	for t := range means {
		if left == 0 {
			cur, other = other, cur
			left = 1 + rng.Intn(2*dwell)
		}
		means[t] = cur
		left--
	}
}

func fill(xs []float64, v float64) {
	for i := range xs {
		xs[i] = v
	}
}
