// Package trace implements the trace-driven simulation substrate of Section
// VI-B: bit-rate traces of a public WiFi network and a cellular network
// observed simultaneously, CSV serialization, a synthetic generator that
// reproduces the qualitative structure of the paper's four trace pairs (the
// authors' raw traces are not distributed; see DESIGN.md §4), and the
// single-device trace-driven run that produces Table VI and Figure 12.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Network indices within a Pair.
const (
	WiFiIndex     = 0
	CellularIndex = 1
)

// Trace is a time series of observed bit rates for one network.
type Trace struct {
	Name        string
	SlotSeconds float64
	// Rates holds one observed bit rate (Mbps) per slot.
	Rates []float64
}

// Pair couples simultaneous WiFi and cellular traces, the unit of evaluation
// in Section VI-B (4 pairs of 25 minutes each).
type Pair struct {
	Name     string
	WiFi     Trace
	Cellular Trace
}

// Slots returns the usable horizon: the shorter of the two traces.
func (p Pair) Slots() int {
	if len(p.WiFi.Rates) < len(p.Cellular.Rates) {
		return len(p.WiFi.Rates)
	}
	return len(p.Cellular.Rates)
}

// Rate returns the bit rate of the given network (WiFiIndex or
// CellularIndex) at slot t.
func (p Pair) Rate(network, t int) float64 {
	if network == CellularIndex {
		return p.Cellular.Rates[t]
	}
	return p.WiFi.Rates[t]
}

// MaxRate returns the largest bit rate across both traces, the default gain
// scale.
func (p Pair) MaxRate() float64 {
	var maxRate float64
	for t := 0; t < p.Slots(); t++ {
		if r := p.WiFi.Rates[t]; r > maxRate {
			maxRate = r
		}
		if r := p.Cellular.Rates[t]; r > maxRate {
			maxRate = r
		}
	}
	return maxRate
}

// Validate reports whether the pair is usable for a trace-driven run.
func (p Pair) Validate() error {
	if p.Slots() == 0 {
		return fmt.Errorf("trace: pair %q has no slots", p.Name)
	}
	for t := 0; t < p.Slots(); t++ {
		if p.WiFi.Rates[t] < 0 || p.Cellular.Rates[t] < 0 {
			return fmt.Errorf("trace: pair %q has a negative rate at slot %d", p.Name, t)
		}
	}
	return nil
}

// WriteCSV serializes the pair as "slot,wifi_mbps,cellular_mbps" rows with a
// header.
func WriteCSV(w io.Writer, p Pair) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"slot", "wifi_mbps", "cellular_mbps"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for t := 0; t < p.Slots(); t++ {
		rec := []string{
			strconv.Itoa(t),
			strconv.FormatFloat(p.WiFi.Rates[t], 'f', 4, 64),
			strconv.FormatFloat(p.Cellular.Rates[t], 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write slot %d: %w", t, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a pair serialized by WriteCSV. The pair's name and slot
// duration must be supplied by the caller (they are not part of the format).
func ReadCSV(r io.Reader, name string, slotSeconds float64) (Pair, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return Pair{}, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(records) < 2 {
		return Pair{}, fmt.Errorf("trace: csv %q has no data rows", name)
	}
	p := Pair{
		Name:     name,
		WiFi:     Trace{Name: name + "/wifi", SlotSeconds: slotSeconds},
		Cellular: Trace{Name: name + "/cellular", SlotSeconds: slotSeconds},
	}
	for i, rec := range records[1:] {
		if len(rec) != 3 {
			return Pair{}, fmt.Errorf("trace: csv %q row %d has %d fields, want 3", name, i+1, len(rec))
		}
		wifi, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return Pair{}, fmt.Errorf("trace: csv %q row %d wifi rate: %w", name, i+1, err)
		}
		cell, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return Pair{}, fmt.Errorf("trace: csv %q row %d cellular rate: %w", name, i+1, err)
		}
		p.WiFi.Rates = append(p.WiFi.Rates, wifi)
		p.Cellular.Rates = append(p.Cellular.Rates, cell)
	}
	return p, nil
}
