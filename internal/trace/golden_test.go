package trace

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGenerateGoldenCSV pins the generated paper pairs byte for byte, in
// their on-disk CSV form: one golden file per style. Regenerate with
// `go test ./internal/trace -run Golden -update` and review the diff — a
// changed file means the trace generator's random stream or the CSV layout
// moved, which silently re-dates every Table VI number.
func TestGenerateGoldenCSV(t *testing.T) {
	for _, tc := range []struct {
		style Style
		seed  int64
	}{
		{StyleAlternating, 1},
		{StyleCellularDominant, 1},
		{StyleCrossover, 3},
		{StyleBothVolatile, 2},
	} {
		t.Run(tc.style.String(), func(t *testing.T) {
			p := Generate(tc.style, 40, tc.seed)
			var buf bytes.Buffer
			if err := WriteCSV(&buf, p); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata",
				fmt.Sprintf("golden_%s_seed%d.csv", sanitize(tc.style.String()), tc.seed))
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Fatalf("generated CSV for %v seed %d differs from %s — generator stream or CSV layout changed",
					tc.style, tc.seed, path)
			}
			// The golden file must survive its own reader: a layout change
			// that breaks ReadCSV would otherwise hide behind -update.
			got, err := ReadCSV(bytes.NewReader(want), p.Name, 15)
			if err != nil {
				t.Fatal(err)
			}
			if got.Slots() != p.Slots() {
				t.Fatalf("golden file reads back %d slots, want %d", got.Slots(), p.Slots())
			}
		})
	}
}

// sanitize maps a style's display name to a file-name-safe slug.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ' || r == '-':
			out = append(out, '_')
		}
	}
	return string(out)
}
