package trace

import (
	"fmt"

	"smartexp3/internal/core"
	"smartexp3/internal/dist"
	"smartexp3/internal/rngutil"
)

// RunConfig parameterizes one trace-driven run: a single device repeatedly
// choosing between the pair's WiFi and cellular networks, observing the
// traced bit rate of whichever it selects (Section VI-B).
type RunConfig struct {
	Pair      Pair
	Algorithm core.Algorithm
	Seed      int64
	// Core configures EXP3-family policies; zero value = core.DefaultConfig.
	Core core.Config
	// GainScale maps bit rates to [0,1]; defaults to the pair's maximum.
	GainScale float64
	// WiFiDelay and CellularDelay model the switching cost; nil = defaults.
	WiFiDelay     dist.Sampler
	CellularDelay dist.Sampler
}

// RunResult is the outcome of one trace-driven run.
type RunResult struct {
	// DownloadMB is the cumulative goodput in megabytes (Table VI).
	DownloadMB float64
	// SwitchCostMB is the data forgone while re-associating: bit rate times
	// switching delay, in megabytes (Table VI's "Cost").
	SwitchCostMB float64
	// Switches counts network changes.
	Switches int
	// Selections holds the chosen network per slot (WiFiIndex or
	// CellularIndex).
	Selections []int
	// RateMbps holds the selected network's traced bit rate per slot — the
	// "bit rate of Smart EXP3" series of Figure 12.
	RateMbps []float64
}

// Run executes one trace-driven selection run.
func Run(cfg RunConfig) (*RunResult, error) {
	if err := cfg.Pair.Validate(); err != nil {
		return nil, err
	}
	slots := cfg.Pair.Slots()
	slotSeconds := cfg.Pair.WiFi.SlotSeconds
	if slotSeconds <= 0 {
		slotSeconds = paperSlotSeconds
	}
	scale := cfg.GainScale
	if scale <= 0 {
		scale = cfg.Pair.MaxRate()
	}
	if scale <= 0 {
		return nil, fmt.Errorf("trace: pair %q has zero rates throughout", cfg.Pair.Name)
	}
	coreCfg := cfg.Core
	if coreCfg.Gamma == nil {
		coreCfg = core.DefaultConfig()
	}
	wifiDelay := cfg.WiFiDelay
	if wifiDelay == nil {
		wifiDelay = dist.DefaultWiFiDelay()
	}
	cellDelay := cfg.CellularDelay
	if cellDelay == nil {
		cellDelay = dist.DefaultCellularDelay()
	}

	rng := rngutil.New(cfg.Seed)
	policy, err := core.New(cfg.Algorithm, []int{WiFiIndex, CellularIndex}, coreCfg, rng)
	if err != nil {
		return nil, err
	}

	res := &RunResult{
		Selections: make([]int, slots),
		RateMbps:   make([]float64, slots),
	}
	last := -1
	for t := 0; t < slots; t++ {
		choice := policy.Select()
		rate := cfg.Pair.Rate(choice, t)
		var delay float64
		if last >= 0 && choice != last {
			res.Switches++
			if choice == CellularIndex {
				delay = cellDelay.Sample(rng)
			} else {
				delay = wifiDelay.Sample(rng)
			}
			if delay < 0 {
				delay = 0
			}
			if delay > slotSeconds {
				delay = slotSeconds
			}
		}
		res.DownloadMB += rate * (slotSeconds - delay) / 8
		res.SwitchCostMB += rate * delay / 8
		res.Selections[t] = choice
		res.RateMbps[t] = rate
		policy.Observe(rate / scale)
		last = choice
	}
	return res, nil
}
