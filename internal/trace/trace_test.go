package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"smartexp3/internal/core"
)

func TestGenerateStylesProduceValidPairs(t *testing.T) {
	for _, style := range []Style{
		StyleAlternating, StyleCellularDominant, StyleCrossover, StyleBothVolatile,
	} {
		t.Run(style.String(), func(t *testing.T) {
			p := Generate(style, 100, 1)
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			if p.Slots() != 100 {
				t.Fatalf("slots = %d, want 100", p.Slots())
			}
			for tt := 0; tt < p.Slots(); tt++ {
				for _, r := range []float64{p.WiFi.Rates[tt], p.Cellular.Rates[tt]} {
					if r < 0.1 || r > 6.5 {
						t.Fatalf("rate %v at slot %d outside the paper's 0-6 Mbps band", r, tt)
					}
				}
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(StyleCrossover, 100, 7)
	b := Generate(StyleCrossover, 100, 7)
	for tt := range a.WiFi.Rates {
		if a.WiFi.Rates[tt] != b.WiFi.Rates[tt] || a.Cellular.Rates[tt] != b.Cellular.Rates[tt] {
			t.Fatalf("generation not deterministic at slot %d", tt)
		}
	}
}

func TestCellularDominantInvariant(t *testing.T) {
	// Pair 2's defining property (Table VI): cellular is better in every
	// single slot.
	for seed := int64(1); seed <= 5; seed++ {
		p := Generate(StyleCellularDominant, 100, seed)
		for tt := 0; tt < p.Slots(); tt++ {
			if p.Cellular.Rates[tt] <= p.WiFi.Rates[tt] {
				t.Fatalf("seed %d slot %d: cellular %v ≤ wifi %v",
					seed, tt, p.Cellular.Rates[tt], p.WiFi.Rates[tt])
			}
		}
	}
}

func TestCrossoverHasNoDominantNetwork(t *testing.T) {
	p := Generate(StyleCrossover, 100, 3)
	wifiWins, cellWins := 0, 0
	for tt := 0; tt < p.Slots(); tt++ {
		if p.WiFi.Rates[tt] > p.Cellular.Rates[tt] {
			wifiWins++
		} else {
			cellWins++
		}
	}
	if wifiWins < 20 || cellWins < 20 {
		t.Fatalf("crossover trace is one-sided: wifi %d, cellular %d", wifiWins, cellWins)
	}
}

func TestPaperPairs(t *testing.T) {
	pairs := PaperPairs(1)
	if len(pairs) != 4 {
		t.Fatalf("want 4 pairs, got %d", len(pairs))
	}
	for i, p := range pairs {
		if p.Slots() != paperSlots {
			t.Fatalf("pair %d has %d slots, want %d", i, p.Slots(), paperSlots)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := Generate(StyleAlternating, 50, 2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, orig.Name, 15)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slots() != orig.Slots() {
		t.Fatalf("round trip lost slots: %d → %d", orig.Slots(), got.Slots())
	}
	for tt := 0; tt < orig.Slots(); tt++ {
		if math.Abs(got.WiFi.Rates[tt]-orig.WiFi.Rates[tt]) > 1e-4 {
			t.Fatalf("wifi rate differs at slot %d", tt)
		}
		if math.Abs(got.Cellular.Rates[tt]-orig.Cellular.Rates[tt]) > 1e-4 {
			t.Fatalf("cellular rate differs at slot %d", tt)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"empty", ""},
		{"header only", "slot,wifi_mbps,cellular_mbps\n"},
		{"wrong field count", "slot,wifi_mbps,cellular_mbps\n0,1\n"},
		{"bad wifi number", "slot,wifi_mbps,cellular_mbps\n0,x,2\n"},
		{"bad cellular number", "slot,wifi_mbps,cellular_mbps\n0,1,x\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.give), "t", 15); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestPairAccessors(t *testing.T) {
	p := Pair{
		WiFi:     Trace{Rates: []float64{1, 2}},
		Cellular: Trace{Rates: []float64{3, 4, 5}},
	}
	if p.Slots() != 2 {
		t.Fatalf("Slots = %d, want min(2,3)=2", p.Slots())
	}
	if p.Rate(WiFiIndex, 1) != 2 || p.Rate(CellularIndex, 1) != 4 {
		t.Fatal("Rate accessor wrong")
	}
	if p.MaxRate() != 4 {
		t.Fatalf("MaxRate = %v, want 4 (within usable slots)", p.MaxRate())
	}
}

func TestValidateRejectsBadPairs(t *testing.T) {
	if err := (Pair{}).Validate(); err == nil {
		t.Fatal("empty pair must be invalid")
	}
	p := Pair{
		WiFi:     Trace{Rates: []float64{1, -1}},
		Cellular: Trace{Rates: []float64{1, 1}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("negative rates must be invalid")
	}
}

func TestRunDownloadsAndCostsAddUp(t *testing.T) {
	pair := Generate(StyleCrossover, 100, 4)
	res, err := Run(RunConfig{Pair: pair, Algorithm: core.AlgSmartEXP3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadMB <= 0 {
		t.Fatal("no download")
	}
	// download + switching loss must equal the no-delay counterfactual of
	// the same selection sequence.
	var ideal float64
	for tt, sel := range res.Selections {
		ideal += pair.Rate(sel, tt) * 15 / 8
	}
	if math.Abs(res.DownloadMB+res.SwitchCostMB-ideal) > 1e-6 {
		t.Fatalf("download %v + cost %v != ideal %v", res.DownloadMB, res.SwitchCostMB, ideal)
	}
	if len(res.RateMbps) != pair.Slots() {
		t.Fatalf("rate series has %d slots", len(res.RateMbps))
	}
}

func TestRunDeterministic(t *testing.T) {
	pair := Generate(StyleAlternating, 100, 6)
	cfg := RunConfig{Pair: pair, Algorithm: core.AlgSmartEXP3, Seed: 9}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DownloadMB != b.DownloadMB || a.Switches != b.Switches {
		t.Fatal("trace runs are not deterministic")
	}
}

func TestRunGreedyBarelySwitches(t *testing.T) {
	pair := Generate(StyleCellularDominant, 100, 7)
	res, err := Run(RunConfig{Pair: pair, Algorithm: core.AlgGreedy, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches > 5 {
		t.Fatalf("greedy switched %d times on a dominated pair", res.Switches)
	}
}

func TestRunRejectsInvalidPair(t *testing.T) {
	if _, err := Run(RunConfig{Pair: Pair{}, Algorithm: core.AlgGreedy}); err == nil {
		t.Fatal("want error for empty pair")
	}
}

func TestSmartBeatsGreedyOnCrossover(t *testing.T) {
	// The core Table VI claim, at reduced scale: with a mid-trace
	// crossover, Smart EXP3's continued exploration beats Greedy's lock-in.
	pair := Generate(StyleCrossover, 100, 8)
	var smart, greedy float64
	const runs = 30
	for s := int64(0); s < runs; s++ {
		rs, err := Run(RunConfig{Pair: pair, Algorithm: core.AlgSmartEXP3, Seed: 100 + s})
		if err != nil {
			t.Fatal(err)
		}
		rg, err := Run(RunConfig{Pair: pair, Algorithm: core.AlgGreedy, Seed: 100 + s})
		if err != nil {
			t.Fatal(err)
		}
		smart += rs.DownloadMB
		greedy += rg.DownloadMB
	}
	if smart <= greedy {
		t.Fatalf("smart %.1f MB ≤ greedy %.1f MB on the crossover pair", smart/runs, greedy/runs)
	}
}
