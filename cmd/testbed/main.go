// Command testbed runs one controlled experiment over real TCP sockets on
// localhost: token-bucket-limited access points (4/7/22 Mbps virtual), 14
// client devices, and a chosen selection algorithm (Section VII-A).
//
// Usage:
//
//	testbed -algorithm smart -slots 120 -slotdur 100ms
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"smartexp3"
	"smartexp3/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "testbed:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("testbed", flag.ContinueOnError)
	var (
		algName = fs.String("algorithm", "smart", "smart | greedy | mixed")
		devices = fs.Int("devices", 14, "number of client devices")
		slots   = fs.Int("slots", 120, "number of time slots")
		slotDur = fs.Duration("slotdur", 100*time.Millisecond, "wall-clock duration of one slot")
		seed    = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	specs := make([]smartexp3.TestbedDeviceSpec, *devices)
	for d := range specs {
		switch strings.ToLower(*algName) {
		case "smart":
			specs[d].Algorithm = smartexp3.AlgSmartEXP3
		case "greedy":
			specs[d].Algorithm = smartexp3.AlgGreedy
		case "mixed":
			if d < *devices/2 {
				specs[d].Algorithm = smartexp3.AlgSmartEXP3
			} else {
				specs[d].Algorithm = smartexp3.AlgGreedy
			}
		default:
			return fmt.Errorf("unknown algorithm %q", *algName)
		}
	}

	fmt.Printf("running %d devices for %d slots of %s (wall time ≈ %s)...\n",
		*devices, *slots, *slotDur, time.Duration(*slots)*(*slotDur))
	res, err := smartexp3.RunTestbed(smartexp3.TestbedConfig{
		APs: []smartexp3.Network{
			{Name: "ap-4", Type: smartexp3.WiFi, Bandwidth: 4},
			{Name: "ap-7", Type: smartexp3.WiFi, Bandwidth: 7},
			{Name: "ap-22", Type: smartexp3.WiFi, Bandwidth: 22},
		},
		Devices:      specs,
		Slots:        *slots,
		SlotDuration: *slotDur,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}

	var pcts, switches []float64
	for d := range res.Devices {
		dev := &res.Devices[d]
		pcts = append(pcts, dev.DownloadPct)
		switches = append(switches, float64(dev.Switches))
		fmt.Printf("device %2d  %-12s  %8d bytes  %5.2f%%  %3d switches  %d resets\n",
			d, dev.Algorithm, dev.DownloadBytes, dev.DownloadPct, dev.Switches, dev.Resets)
	}
	fmt.Printf("\nmedian download %%   %.2f (sd %.2f, fair share %.2f)\n",
		stats.Median(pcts), stats.StdDev(pcts), 100/float64(*devices))
	fmt.Printf("mean switches       %.1f\n", stats.Mean(switches))
	fmt.Printf("final distance      %.2f%% (optimal %.2f%%)\n",
		stats.Mean(res.Distance[len(res.Distance)*3/4:]), res.OptimalDistance)
	return nil
}
