package main

import (
	"strings"
	"testing"
)

func TestRunTinyTestbed(t *testing.T) {
	err := run([]string{"-devices", "3", "-slots", "8", "-slotdur", "25ms", "-algorithm", "mixed"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRejectsUnknownAlgorithm(t *testing.T) {
	err := run([]string{"-algorithm", "qlearning", "-slots", "2"})
	if err == nil || !strings.Contains(err.Error(), "algorithm") {
		t.Fatalf("error = %v", err)
	}
}
