// Command tracegen writes the four synthetic WiFi/cellular trace pairs of
// Section VI-B as CSV files (slot,wifi_mbps,cellular_mbps).
//
// Usage:
//
//	tracegen -out traces -seed 1 -slots 100
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"smartexp3"
	"smartexp3/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		out   = fs.String("out", "traces", "output directory")
		seed  = fs.Int64("seed", 1, "random seed")
		slots = fs.Int("slots", 100, "slots per trace (15 s each)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	styles := []smartexp3.TraceStyle{
		trace.StyleAlternating, trace.StyleCellularDominant,
		trace.StyleCrossover, trace.StyleBothVolatile,
	}
	for i, style := range styles {
		pair := smartexp3.GenerateTracePair(style, *slots, *seed)
		path := filepath.Join(*out, fmt.Sprintf("pair%d_%s.csv", i+1, style))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := trace.WriteCSV(f, pair); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d slots)\n", path, pair.Slots())
	}
	return nil
}
