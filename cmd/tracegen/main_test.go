package main

import (
	"os"
	"path/filepath"
	"testing"

	"smartexp3/internal/trace"
)

func TestGeneratesFourReadablePairs(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-seed", "5", "-slots", "40"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("wrote %d files, want 4", len(entries))
	}
	for _, e := range entries {
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		pair, err := trace.ReadCSV(f, e.Name(), 15)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if pair.Slots() != 40 {
			t.Fatalf("%s has %d slots, want 40", e.Name(), pair.Slots())
		}
	}
}

func TestRejectsUnwritableDir(t *testing.T) {
	if err := run([]string{"-out", "/proc/definitely/not/writable"}); err == nil {
		t.Fatal("want error for unwritable output directory")
	}
}
