package main

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smartexp3/internal/fleet"
	"smartexp3/internal/obsv"
	"smartexp3/internal/serve"
)

// TestParsePeers pins the roster flag grammar.
func TestParsePeers(t *testing.T) {
	roster, err := parsePeers("b=h2:1@h2:2, a=h1:1@h1:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(roster) != 2 || roster[0].ID != "b" || roster[1].Control != "h1:2" {
		t.Fatalf("parsed roster %+v", roster)
	}
	for _, bad := range []string{
		"",
		"a=h1:1",          // no control address
		"a@h1:1@h1:2",     // no id separator
		"=h1:1@h1:2",      // empty id
		"a=@h1:2",         // empty data address
		"a=h:1@h:2,a=x@y", // duplicate id
	} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

// TestRunRejectsBadFlags pins the flag surface without starting listeners.
func TestRunRejectsBadFlags(t *testing.T) {
	roster := "a=127.0.0.1:1@127.0.0.1:2"
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-alg", "greedy", "-id", "a", "-bootstrap", "-peers", roster}, "unknown algorithm"},
		{[]string{"-bootstrap", "-peers", roster}, "-id is required"},
		{[]string{"-id", "a", "-peers", roster}, "exactly one of -bootstrap or -join"},
		{[]string{"-id", "a", "-bootstrap", "-join", "-peers", roster}, "exactly one of -bootstrap or -join"},
		{[]string{"-id", "a", "-bootstrap"}, "-peers is empty"},
		{[]string{"-id", "x", "-bootstrap", "-peers", roster}, "appear in -peers"},
		{[]string{"-id", "a", "-bootstrap", "-peers", roster, "-stripes", "0"}, "out of range"},
		{[]string{"-id", "a", "-bootstrap", "-peers", roster, "-snapshot-every", "1m"}, "requires -snapshot"},
		{[]string{"-rebalance-once"}, "-peers is empty"},
		// -join against a dead roster must fail loudly, not boot a peer
		// that owns nothing and can never learn the table.
		{[]string{"-id", "x", "-join", "-peers", roster, "-quiet"}, "could not fetch a table"},
	} {
		if err := run(tc.args); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want %q", tc.args, err, tc.want)
		}
	}
}

// buildFleetd compiles the daemon binary the smoke test execs.
func buildFleetd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fleetd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves an ephemeral loopback address and releases it for a
// daemon to bind.
func freePort(t *testing.T) string {
	t.Helper()
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()
	return addr
}

// peerProc is one real fleetd process under test.
type peerProc struct {
	cmd    *exec.Cmd
	stderr *bytes.Buffer
}

// startPeer execs the fleetd binary and waits until both its listeners
// accept. The process is killed at test cleanup if still running; its
// stderr is dumped on failure.
func startPeer(t *testing.T, bin, data, ctrl string, args ...string) *peerProc {
	t.Helper()
	p := &peerProc{cmd: exec.Command(bin, args...), stderr: &bytes.Buffer{}}
	p.cmd.Stderr = p.stderr
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
		if t.Failed() {
			t.Logf("fleetd %v stderr:\n%s", p.cmd.Args[1:], p.stderr)
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for _, addr := range []string{data, ctrl} {
		for {
			conn, err := net.Dial("tcp", addr)
			if err == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("fleetd %v never listened on %s: %v\nstderr:\n%s", p.cmd.Args[1:], addr, err, p.stderr)
			}
			if p.cmd.ProcessState != nil {
				t.Fatalf("fleetd %v exited early\nstderr:\n%s", p.cmd.Args[1:], p.stderr)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return p
}

// learnedBytes encodes a snapshot with Dropped zeroed: migrations and
// resends legitimately drop slot-duplicates, so the determinism claim is
// about the learned state itself.
func learnedBytes(t *testing.T, sn *serve.Snapshot) []byte {
	t.Helper()
	sn.Dropped = 0
	var buf bytes.Buffer
	if err := sn.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// smokeReward is the deterministic environment shared between the fleet
// and the reference store.
func smokeReward(device uint64, arm, slot int) float64 {
	return float64((device*31+uint64(arm)*7+uint64(slot)*13)%97) / 97
}

// TestFleetSmokeThreeProcesses is the daemon-level acceptance run: three
// real fleetd processes serve a scripted workload through one
// coordinator rebalance (run as a fourth fleetd process) and one SIGKILL
// of a checkpointed peer, and every decision plus the merged final
// snapshots must be bit-identical to one uninterrupted in-process store.
// It also scrapes a peer's /metrics for the fleet counter set.
func TestFleetSmokeThreeProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("execs real daemon processes")
	}
	bin := buildFleetd(t)
	dir := t.TempDir()

	type peerAddrs struct{ data, ctrl, snap string }
	addrs := map[string]peerAddrs{}
	for _, id := range []string{"a", "b", "c"} {
		addrs[id] = peerAddrs{freePort(t), freePort(t), filepath.Join(dir, id+".snap")}
	}
	entry := func(id string) string { return id + "=" + addrs[id].data + "@" + addrs[id].ctrl }
	roster2 := entry("a") + "," + entry("b")
	roster3 := roster2 + "," + entry("c")
	debugAddr := freePort(t)

	common := func(id string, extra ...string) []string {
		return append([]string{
			"-id", id, "-listen", addrs[id].data, "-control", addrs[id].ctrl,
			"-snapshot", addrs[id].snap,
		}, extra...)
	}
	startPeer(t, bin, addrs["a"].data, addrs["a"].ctrl,
		common("a", "-bootstrap", "-peers", roster2, "-debug-addr", debugAddr)...)
	procB := startPeer(t, bin, addrs["b"].data, addrs["b"].ctrl,
		common("b", "-bootstrap", "-peers", roster2)...)
	startPeer(t, bin, addrs["c"].data, addrs["c"].ctrl,
		common("c", "-join", "-peers", roster3)...)

	// The uninterrupted reference: daemon defaults (smart, seed 1).
	ref, err := serve.NewStore(serve.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	arms := []int{10, 20, 30}
	devices := make([]uint64, 16)
	for i := range devices {
		devices[i] = uint64(i + 1)
	}

	client, err := fleet.NewClient(fleet.ClientOptions{
		Controls:     []string{addrs["a"].ctrl, addrs["b"].ctrl, addrs["c"].ctrl},
		FrameTimeout: 5 * time.Second,
		MaxAttempts:  50,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if got := client.Table().Epoch; got != 1 {
		t.Fatalf("bootstrap epoch = %d, want 1", got)
	}

	drive := func(from, to int) {
		t.Helper()
		for slot := from; slot < to; slot++ {
			for _, dev := range devices {
				wantArm, refSlot, err := ref.Select(dev, arms)
				if err != nil {
					t.Fatal(err)
				}
				got, err := client.Select(dev, arms)
				if err != nil {
					t.Fatalf("slot %d device %d: %v", slot, dev, err)
				}
				if got != wantArm {
					t.Fatalf("slot %d device %d: fleet chose %d, reference store %d", slot, dev, got, wantArm)
				}
				r := smokeReward(dev, wantArm, slot)
				ref.Feedback(dev, wantArm, refSlot, r)
				if err := client.Feedback(dev, got, r); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	drive(0, 60)

	// One coordinator rebalance, run as a real fleetd process: peer c is
	// admitted and takes over its rendezvous share of the stripes.
	out, err := exec.Command(bin, "-rebalance-once", "-peers", roster3).CombinedOutput()
	if err != nil {
		t.Fatalf("rebalance-once: %v\n%s", err, out)
	}
	drive(60, 120)
	if client.Redirects() == 0 {
		t.Fatal("the rebalance moved no traffic the client noticed; the test proved nothing")
	}
	if got := client.Table().Epoch; got != 2 {
		t.Fatalf("client healed to epoch %d, want 2", got)
	}

	// Checkpoint peer b over the control protocol, SIGKILL it, restart it
	// from the snapshot with -join: no decision may change. The Flush is
	// the barrier that gets every buffered feedback applied before the
	// checkpoint cuts the state that must survive the kill.
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Checkpoint(addrs["b"].ctrl, "smoke", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	procB.cmd.Process.Kill()
	procB.cmd.Wait()
	startPeer(t, bin, addrs["b"].data, addrs["b"].ctrl,
		common("b", "-join", "-peers", roster3, "-quiet")...)

	drive(120, 180)

	// Merge the three final snapshots: the fleet's learned state must be
	// bit-identical to the uninterrupted store's.
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	var snaps []*serve.Snapshot
	for _, id := range []string{"a", "b", "c"} {
		if err := fleet.Checkpoint(addrs[id].ctrl, "smoke", 5*time.Second); err != nil {
			t.Fatalf("checkpoint %s: %v", id, err)
		}
		st, err := serve.NewStore(serve.Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.LoadFile(addrs[id].snap); err != nil {
			t.Fatalf("load %s snapshot: %v", id, err)
		}
		snaps = append(snaps, st.Snapshot())
	}
	merged, err := fleet.MergeSnapshots(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(learnedBytes(t, merged), learnedBytes(t, ref.Snapshot())) {
		t.Fatal("merged fleet snapshots differ from the uninterrupted store's state")
	}

	// The debug listener on peer a must expose the fleet counter set as
	// parseable Prometheus text, with the committed epoch on the gauge.
	resp, err := http.Get("http://" + debugAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obsv.CheckPrometheusText(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics not parseable Prometheus text: %v\n%s", err, body)
	}
	for _, want := range []string{
		"fleet_table_epoch 2",
		"fleet_redirects_total",
		"fleet_migrations_total",
		"fleet_migrated_devices_total",
		"fleet_migrated_bytes_total",
		"fleet_migration_latency_ns",
		"serve_select_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// Orderly SIGTERM on one peer at the end proves the signal path
	// flushes: its snapshot file must be rewritten after this point.
	if err := os.Remove(addrs["c"].snap); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Checkpoint(addrs["c"].ctrl, "smoke", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(addrs["c"].snap); err != nil {
		t.Fatalf("checkpoint did not rewrite the snapshot: %v", err)
	}
}
