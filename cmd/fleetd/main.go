// Command fleetd is one peer of a sharded decision-service fleet: a
// served-style daemon (internal/serve) that owns a slice of the device-id
// space under a versioned partition table (internal/fleet), answers
// Select / Feedback for its slice, and redirects everything else to the
// owning peer. A second listener (-control) speaks the fleet control
// protocol: table fetch for joining peers and clients, snapshot-handoff
// migration driven by a coordinator, and remote checkpoint.
//
// A fleet boots in two steps. Every founding peer starts with -bootstrap
// and the same -peers roster: fleet.NewTable is deterministic over the
// roster, so each founder compiles the identical epoch-1 table with no
// rendezvous beyond the shared flag line. A later peer starts with -join
// instead and fetches the current table from the first reachable roster
// control address — it owns nothing until a rebalance admits it.
//
// Rebalancing is explicit, never automatic. `fleetd -rebalance-once
// -peers ...` runs one coordinator pass and exits: it probes the roster,
// computes the next table over the live peers, drains each moving stripe
// on its old owner (traffic redirects mid-handoff; no decision is lost or
// doubled), ships the cut over the framed wire, and commits the bumped
// epoch fleet-wide. -rebalance-every runs the same pass on a timer inside
// a serving peer, for fleets that prefer a resident coordinator.
//
// State, snapshots, eviction-free determinism, -debug-addr and
// -metrics-log-every all behave exactly as in served; /metrics
// additionally carries the fleet_* counter set (redirects, table epoch,
// migration volume). With -snapshot set the peer also honours the
// control protocol's checkpoint request, which is how a coordinator
// flushes a peer before taking it down: kill a checkpointed peer with
// SIGKILL and restart it with -join -snapshot and the fleet's merged
// state is bit-identical to an uninterrupted run.
//
// Usage:
//
//	fleetd -id a -listen :9700 -control :9701 -bootstrap \
//	       -peers "a=host1:9700@host1:9701,b=host2:9700@host2:9701"
//	fleetd -id c -listen :9700 -control :9701 -join \
//	       -peers "a=host1:9700@host1:9701"          # fetch table, own nothing yet
//	fleetd -rebalance-once -peers "a=...@...,b=...@...,c=...@..."
//	fleetd -id a ... -snapshot /var/lib/fleetd-a.snap -debug-addr 127.0.0.1:9633
//
// Like served and shardd, both protocols are unauthenticated and
// unencrypted: run fleetd only on networks where every peer is trusted.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smartexp3/internal/core"
	"smartexp3/internal/fleet"
	"smartexp3/internal/obsv"
	"smartexp3/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
}

// algorithmsByName mirrors served's flag vocabulary: the EXP3 family
// whose policy state the serve layer can snapshot — a fleet migrates by
// snapshot, so only snapshot-capable policies can be fleet members.
var algorithmsByName = map[string]core.Algorithm{
	"exp3":    core.AlgEXP3,
	"block":   core.AlgBlockEXP3,
	"hybrid":  core.AlgHybridBlockEXP3,
	"smartnr": core.AlgSmartEXP3NoReset,
	"smart":   core.AlgSmartEXP3,
}

// parsePeers decodes the -peers roster: comma-separated
// "id=dataAddr@controlAddr" entries, order-insensitive (the table builder
// sorts by id).
func parsePeers(s string) ([]fleet.PeerInfo, error) {
	if s == "" {
		return nil, fmt.Errorf("-peers is empty")
	}
	var roster []fleet.PeerInfo
	seen := make(map[string]bool)
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		id, addrs, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("peer entry %q: want id=dataAddr@controlAddr", ent)
		}
		data, ctrl, ok := strings.Cut(addrs, "@")
		if !ok {
			return nil, fmt.Errorf("peer entry %q: want id=dataAddr@controlAddr", ent)
		}
		if id == "" || data == "" || ctrl == "" {
			return nil, fmt.Errorf("peer entry %q: empty id or address", ent)
		}
		if seen[id] {
			return nil, fmt.Errorf("peer id %q listed twice", id)
		}
		seen[id] = true
		roster = append(roster, fleet.PeerInfo{ID: id, Addr: data, Control: ctrl})
	}
	return roster, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("fleetd", flag.ContinueOnError)
	var (
		id        = fs.String("id", "", "this peer's id in the -peers roster")
		listen    = fs.String("listen", "127.0.0.1:9700", "address to serve Select/Feedback on")
		control   = fs.String("control", "127.0.0.1:9701", "address to serve the fleet control protocol on")
		peersFlag = fs.String("peers", "", `fleet roster: comma-separated "id=dataAddr@controlAddr"`)
		bootstrap = fs.Bool("bootstrap", false, "install the deterministic epoch-1 table over -peers at boot")
		join      = fs.Bool("join", false, "fetch the current table from a -peers control address at boot")
		stripes   = fs.Int("stripes", fleet.DefaultStripeBits, "partition-table stripe bits (2^bits stripes; -bootstrap only)")
		rebOnce   = fs.Bool("rebalance-once", false, "run one coordinator rebalance over -peers and exit (no listeners)")
		rebEvery  = fs.Duration("rebalance-every", 0, "also run a coordinator rebalance over -peers at this interval (0 disables)")
		algName   = fs.String("alg", "smart", "policy to serve: exp3|block|hybrid|smartnr|smart")
		seed      = fs.Int64("seed", 1, "root seed; device d draws from ChildSeed(seed, d) — must match fleet-wide")
		shards    = fs.Int("state-shards", 0, "device-map shard count (default: 4×GOMAXPROCS, rounded to a power of two)")
		maxArms   = fs.Int("max-arms", 0, "per-request arm-set bound (default 1024)")
		snapshot  = fs.String("snapshot", "", "state file: restored at boot if present, written on SIGTERM/SIGINT and control-protocol checkpoint")
		every     = fs.Duration("snapshot-every", 0, "also checkpoint the state file at this interval (requires -snapshot)")
		debug     = fs.String("debug-addr", "", "serve /metrics, /varz and /debug/pprof/ on this address (empty disables)")
		logEvery  = fs.Duration("metrics-log-every", 0, "emit a structured metrics-delta log line at this interval (0 disables)")
		quiet     = fs.Bool("quiet", false, "suppress log lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(os.Stderr, "fleetd: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	if *rebOnce {
		roster, err := parsePeers(*peersFlag)
		if err != nil {
			return err
		}
		self := *id
		if self == "" {
			self = "coordinator"
		}
		coord := &fleet.Coordinator{Self: self}
		tab, err := coord.Rebalance(roster)
		if err != nil {
			return err
		}
		logf("rebalanced to epoch %d over %d peers", tab.Epoch, len(tab.Peers))
		return nil
	}

	alg, ok := algorithmsByName[*algName]
	if !ok {
		return fmt.Errorf("unknown algorithm %q (want exp3|block|hybrid|smartnr|smart)", *algName)
	}
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	if *bootstrap == *join {
		return fmt.Errorf("exactly one of -bootstrap or -join is required")
	}
	if *every > 0 && *snapshot == "" {
		return fmt.Errorf("-snapshot-every requires -snapshot")
	}
	roster, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}
	if *bootstrap {
		found := false
		for _, p := range roster {
			found = found || p.ID == *id
		}
		if !found {
			return fmt.Errorf("-bootstrap requires -id %q to appear in -peers", *id)
		}
	}

	store, err := serve.NewStore(serve.Config{
		Algorithm: alg,
		Seed:      *seed,
		Shards:    *shards,
		MaxArms:   *maxArms,
	})
	if err != nil {
		return err
	}
	if *snapshot != "" {
		switch err := store.LoadFile(*snapshot); {
		case err == nil:
			logf("restored %d device sessions from %s", store.Devices(), *snapshot)
		case errors.Is(err, os.ErrNotExist):
			logf("no snapshot at %s, starting fresh", *snapshot)
		default:
			return err
		}
	}

	// Instrumentation is built only when something will consume it; the
	// fleet counter set rides the same registry as the serve metrics.
	var reg *obsv.Registry
	var fm *fleet.Metrics
	srvOpts := serve.ServerOptions{}
	if *debug != "" || *logEvery > 0 {
		reg = obsv.NewRegistry()
		store.Instrument(reg)
		srvOpts.Metrics = serve.NewServerMetrics(reg)
		fm = fleet.NewMetrics(reg)
	}
	peer, err := fleet.NewPeer(store, fleet.PeerOptions{
		ID:           *id,
		SnapshotPath: *snapshot,
		Metrics:      fm,
	})
	if err != nil {
		return err
	}

	switch {
	case *bootstrap:
		if *stripes < 1 || *stripes > 16 {
			return fmt.Errorf("-stripes %d out of range [1,16]", *stripes)
		}
		tab, err := fleet.NewTable(uint8(*stripes), roster)
		if err != nil {
			return err
		}
		if err := peer.InstallTable(tab); err != nil {
			return err
		}
		logf("bootstrapped epoch %d over %d peers, %d stripes", tab.Epoch, len(tab.Peers), tab.Stripes())
	case *join:
		var tab *fleet.Table
		var lastErr error
		for _, p := range roster {
			if p.ID == *id {
				continue
			}
			if tab, lastErr = fleet.FetchTable(p.Control, *id, 5*time.Second); lastErr == nil {
				break
			}
		}
		if tab == nil {
			return fmt.Errorf("-join could not fetch a table from any roster peer: %w", lastErr)
		}
		if err := peer.InstallTable(tab); err != nil {
			return err
		}
		logf("joined at epoch %d (%d peers); this peer owns nothing until a rebalance admits it", tab.Epoch, len(tab.Peers))
	}

	if *debug != "" {
		ds, err := obsv.ListenAndServe(*debug, reg)
		if err != nil {
			return err
		}
		defer ds.Close()
		logf("debug endpoints on http://%s/ (/metrics, /varz, /debug/pprof/)", ds.Addr())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	ctrlLn, err := net.Listen("tcp", *control)
	if err != nil {
		return err
	}
	defer ctrlLn.Close()
	srv := serve.NewServer(store, srvOpts)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigCh)
	// shutdown is closed before the listeners, so the Serve error path
	// below can tell an orderly signal exit from a transport failure
	// without a race.
	shutdown := make(chan struct{})
	if *logEvery > 0 {
		dl := obsv.NewDeltaLogger(reg, slog.New(slog.NewTextHandler(os.Stderr, nil)))
		go dl.Run(*logEvery, shutdown)
	}
	go func() {
		var tick <-chan time.Time
		if *every > 0 {
			t := time.NewTicker(*every)
			defer t.Stop()
			tick = t.C
		}
		var reb <-chan time.Time
		if *rebEvery > 0 {
			t := time.NewTicker(*rebEvery)
			defer t.Stop()
			reb = t.C
		}
		for {
			select {
			case sig := <-sigCh:
				logf("caught %v, flushing state", sig)
				close(shutdown)
				ln.Close()     // stop accepting data connections; Serve returns
				srv.Close()    // tear down live data connections
				ctrlLn.Close() // stop the control accept loop
				peer.Close()   // tear down live control connections
				return
			case <-tick:
				if err := store.SaveFile(*snapshot); err != nil {
					logf("checkpoint failed: %v", err)
				} else {
					logf("checkpointed %d device sessions to %s", store.Devices(), *snapshot)
				}
			case <-reb:
				coord := &fleet.Coordinator{Self: *id, Metrics: fm}
				if tab, err := coord.Rebalance(roster); err != nil {
					logf("rebalance failed: %v", err)
				} else {
					logf("rebalanced to epoch %d over %d peers", tab.Epoch, len(tab.Peers))
				}
			}
		}
	}()
	ctrlErr := make(chan error, 1)
	go func() { ctrlErr <- peer.ServeControl(ctrlLn) }()

	logf("peer %s serving %v on %s, control on %s", *id, alg, ln.Addr(), ctrlLn.Addr())
	serveErr := srv.Serve(ln)
	select {
	case <-shutdown: // orderly exit: the listener close is ours, flush state
		<-ctrlErr // the control loop exits on its closed listener too
		if *snapshot != "" {
			if err := store.SaveFile(*snapshot); err != nil {
				return err
			}
			logf("flushed %d device sessions to %s", store.Devices(), *snapshot)
		}
		return nil
	default:
		return serveErr
	}
}
