// Command benchguard fails CI when a benchmark's allocations regress above
// the recorded baseline. It reads `go test -bench -benchmem` output from
// stdin, matches benchmark names against the baselines in BENCH_runner.json
// (ignoring the -GOMAXPROCS suffix), and exits non-zero if any matched
// benchmark allocates more than tolerance times its recorded allocs_per_op
// (plus a small absolute slack for runtime noise on zero-alloc baselines).
//
// ns/op is deliberately not enforced: shared CI runners make timing too
// noisy to gate on, while allocs/op is deterministic for a fixed workload.
//
// A gate is only as strong as its coverage: a benchmark that silently
// disappears from the input (renamed, skipped, filtered out by a stale
// -bench pattern) would otherwise pass. -require closes that hole: every
// baseline whose name matches the pattern must appear in the input, and
// each absent one is reported as its own failure.
//
// Usage:
//
//	go test -run '^$' -bench 'RunnerReplications|SimReplication' -benchtime 100x -benchmem . | go run ./cmd/benchguard
//	go run ./cmd/benchguard -baseline BENCH_runner.json < bench.out
//	go run ./cmd/benchguard -require 'RunnerReplications/workers=1|SimReplication' < bench.out
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type baselineFile struct {
	Benchmarks []struct {
		Name        string  `json:"name"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		// Gated defaults to true; rows recorded for trend-watching only
		// (for example allocations dominated by encoding internals rather
		// than the simulation hot path) set it to false and are reported
		// but never enforced.
		Gated *bool `json:"gated,omitempty"`
	} `json:"benchmarks"`
}

// benchResult is one parsed benchmark output line.
type benchResult struct {
	name     string
	allocsOp float64
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "BENCH_runner.json", "baseline JSON file")
		tolerance    = fs.Float64("tolerance", 1.25, "allowed allocs/op growth factor over baseline")
		slack        = fs.Float64("slack", 4, "allowed absolute allocs/op growth over baseline")
		require      = fs.String("require", "", "regexp of baseline names that must be present in the input")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var requireRE *regexp.Regexp
	if *require != "" {
		var err error
		if requireRE, err = regexp.Compile(*require); err != nil {
			return fmt.Errorf("bad -require pattern: %w", err)
		}
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", *baselinePath, err)
	}
	ceilings := make(map[string]float64, len(base.Benchmarks))
	ungated := make(map[string]bool)
	for _, b := range base.Benchmarks {
		ceilings[b.Name] = b.AllocsPerOp
		if b.Gated != nil && !*b.Gated {
			ungated[b.Name] = true
		}
	}

	results, err := parseBenchOutput(in)
	if err != nil {
		return err
	}

	matched, failed := 0, 0
	present := make(map[string]bool, len(results))
	for _, r := range results {
		present[r.name] = true
		baseline, ok := ceilings[r.name]
		if !ok {
			fmt.Fprintf(out, "SKIP  %s: no recorded baseline\n", r.name)
			continue
		}
		if ungated[r.name] {
			fmt.Fprintf(out, "info  %s: %.0f allocs/op (ungated baseline %.0f)\n", r.name, r.allocsOp, baseline)
			continue
		}
		matched++
		limit := baseline**tolerance + *slack
		if r.allocsOp > limit {
			failed++
			fmt.Fprintf(out, "FAIL  %s: %.0f allocs/op exceeds baseline %.0f (limit %.0f)\n",
				r.name, r.allocsOp, baseline, limit)
		} else {
			fmt.Fprintf(out, "ok    %s: %.0f allocs/op (baseline %.0f)\n", r.name, r.allocsOp, baseline)
		}
	}
	// Presence gate: every required baseline must have produced a row. Each
	// missing one fails on its own line, so a renamed or filtered-out
	// benchmark is named instead of silently shrinking the gate.
	if requireRE != nil {
		required := 0
		for _, b := range base.Benchmarks {
			if !requireRE.MatchString(b.Name) {
				continue
			}
			required++
			if !present[b.Name] {
				failed++
				fmt.Fprintf(out, "FAIL  %s: required baseline missing from the bench output (renamed, skipped, or filtered out?)\n", b.Name)
			}
		}
		if required == 0 {
			return fmt.Errorf("-require %q matches no baseline in %s — pattern drift?", *require, *baselinePath)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no benchmark in the input matched a recorded baseline — name drift?")
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed allocs/op or went missing", failed)
	}
	return nil
}

// parseBenchOutput extracts (name, allocs/op) pairs from `go test -bench
// -benchmem` output. Lines look like:
//
//	BenchmarkFoo/case=1-8    100    123456 ns/op    1072 B/op    8 allocs/op
//
// The trailing -N of the name is the GOMAXPROCS suffix and is stripped so
// names match baselines recorded on machines with different core counts.
func parseBenchOutput(in io.Reader) ([]benchResult, error) {
	var out []benchResult
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "allocs/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("line %q: bad allocs/op %q", sc.Text(), fields[i])
				}
				out = append(out, benchResult{name: name, allocsOp: v})
				break
			}
		}
	}
	return out, sc.Err()
}
