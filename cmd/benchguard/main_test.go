package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBaseline = `{
  "benchmarks": [
    {"name": "BenchmarkSimReplication/devices=10", "allocs_per_op": 8},
    {"name": "BenchmarkRunnerReplications/workers=1", "allocs_per_op": 312},
    {"name": "BenchmarkZeroAlloc", "allocs_per_op": 0},
    {"name": "BenchmarkUngatedThing", "allocs_per_op": 100, "gated": false}
  ]
}`

const sampleOutput = `goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimReplication/devices=10-8    100    341442 ns/op    1816 B/op    8 allocs/op
BenchmarkRunnerReplications/workers=1   100    1022272 ns/op   50618 B/op   312 allocs/op
BenchmarkZeroAlloc-4                    100    10 ns/op        0 B/op       2 allocs/op
BenchmarkUnknownThing-8                 100    10 ns/op        0 B/op       9999 allocs/op
PASS
`

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(sampleBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchOutput(t *testing.T) {
	results, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	if results[0].name != "BenchmarkSimReplication/devices=10" || results[0].allocsOp != 8 {
		t.Fatalf("first result = %+v", results[0])
	}
	// Name without a GOMAXPROCS suffix stays intact (workers=1 ends in a
	// digit but the -N suffix is absent).
	if results[1].name != "BenchmarkRunnerReplications/workers=1" {
		t.Fatalf("second result name = %q", results[1].name)
	}
}

func TestGuardPassesWithinLimits(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-baseline", writeBaseline(t)}, strings.NewReader(sampleOutput), &sb)
	if err != nil {
		t.Fatalf("err = %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "SKIP  BenchmarkUnknownThing") {
		t.Fatalf("unmatched benchmark not reported:\n%s", sb.String())
	}
}

func TestGuardFailsOnRegression(t *testing.T) {
	regressed := strings.ReplaceAll(sampleOutput, "8 allocs/op", "700 allocs/op")
	var sb strings.Builder
	err := run([]string{"-baseline", writeBaseline(t)}, strings.NewReader(regressed), &sb)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("err = %v, want regression failure\n%s", err, sb.String())
	}
}

func TestGuardFailsWhenNothingMatches(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-baseline", writeBaseline(t)},
		strings.NewReader("BenchmarkRenamed-8 10 5 ns/op 0 B/op 0 allocs/op\n"), &sb)
	if err == nil || !strings.Contains(err.Error(), "matched") {
		t.Fatalf("err = %v, want no-match failure", err)
	}
}

// TestGuardUngatedBaselineNeverFails pins the "gated": false marker: the
// row is reported for trend-watching but an arbitrary regression in it
// cannot fail the gate.
func TestGuardUngatedBaselineNeverFails(t *testing.T) {
	input := sampleOutput +
		"BenchmarkUngatedThing-8 100 10 ns/op 0 B/op 999999 allocs/op\n"
	var sb strings.Builder
	if err := run([]string{"-baseline", writeBaseline(t)}, strings.NewReader(input), &sb); err != nil {
		t.Fatalf("ungated regression must not fail the gate: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "info  BenchmarkUngatedThing") {
		t.Fatalf("ungated row not reported:\n%s", sb.String())
	}
}

// TestGuardRequireFailsOnMissingBaseline pins the presence gate: a required
// baseline absent from the bench output must fail with its own per-benchmark
// error line instead of silently passing.
func TestGuardRequireFailsOnMissingBaseline(t *testing.T) {
	// Drop the SimReplication row from the output while still requiring it.
	var kept []string
	for _, line := range strings.Split(sampleOutput, "\n") {
		if !strings.Contains(line, "SimReplication") {
			kept = append(kept, line)
		}
	}
	var sb strings.Builder
	err := run([]string{"-baseline", writeBaseline(t), "-require", "SimReplication|RunnerReplications"},
		strings.NewReader(strings.Join(kept, "\n")), &sb)
	if err == nil {
		t.Fatalf("missing required baseline must fail\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "FAIL  BenchmarkSimReplication/devices=10: required baseline missing") {
		t.Fatalf("missing baseline not named:\n%s", sb.String())
	}
	// The present required row is still reported as ok.
	if !strings.Contains(sb.String(), "ok    BenchmarkRunnerReplications/workers=1") {
		t.Fatalf("present baseline not reported:\n%s", sb.String())
	}
}

// TestGuardRequirePassesWhenAllPresent: the same pattern passes when every
// required row is in the output.
func TestGuardRequirePassesWhenAllPresent(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-baseline", writeBaseline(t), "-require", "SimReplication|RunnerReplications"},
		strings.NewReader(sampleOutput), &sb)
	if err != nil {
		t.Fatalf("err = %v\n%s", err, sb.String())
	}
}

// TestGuardRequireRejectsDriftedPattern: a -require pattern matching no
// baseline at all is itself an error (the gate would be vacuous).
func TestGuardRequireRejectsDriftedPattern(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-baseline", writeBaseline(t), "-require", "NoSuchBenchmark"},
		strings.NewReader(sampleOutput), &sb)
	if err == nil || !strings.Contains(err.Error(), "matches no baseline") {
		t.Fatalf("err = %v, want pattern-drift failure", err)
	}
}

func TestGuardRequireRejectsBadRegexp(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-baseline", writeBaseline(t), "-require", "("},
		strings.NewReader(sampleOutput), &sb)
	if err == nil || !strings.Contains(err.Error(), "-require") {
		t.Fatalf("err = %v, want regexp error", err)
	}
}

func TestGuardZeroAllocSlack(t *testing.T) {
	// A zero-alloc baseline tolerates the small absolute slack (runtime
	// noise) but not more.
	var sb strings.Builder
	if err := run([]string{"-baseline", writeBaseline(t)},
		strings.NewReader("BenchmarkZeroAlloc-4 100 10 ns/op 0 B/op 4 allocs/op\n"), &sb); err != nil {
		t.Fatalf("within slack should pass: %v", err)
	}
	sb.Reset()
	if err := run([]string{"-baseline", writeBaseline(t)},
		strings.NewReader("BenchmarkZeroAlloc-4 100 10 ns/op 0 B/op 5 allocs/op\n"), &sb); err == nil {
		t.Fatal("beyond slack should fail")
	}
}
