package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestListDoesNotRunExperiments(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("want error for unknown experiment id")
	}
}

func TestQuickRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-run", "thm2", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"thm2.txt", "thm2.md"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("want flag parse error")
	}
}
