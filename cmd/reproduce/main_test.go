package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"smartexp3/internal/cluster"
)

func TestListDoesNotRunExperiments(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("want error for unknown experiment id")
	}
}

func TestQuickRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-run", "thm2", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"thm2.txt", "thm2.md"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("want flag parse error")
	}
}

// countingListener counts accepted connections: the -cluster session test
// asserts the whole reproduce run used exactly one connection per worker.
type countingListener struct {
	net.Listener
	accepts *atomic.Int32
}

func (l countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepts.Add(1)
	}
	return c, err
}

// TestClusterParexpPipelinesOverOneSession drives the real CLI path: two
// experiments under -parexp -cluster against one in-process worker. The
// worker must see exactly one connection (the persistent session) carrying
// several accepted jobs (the experiments' pipelined batches), and the run
// must produce its artifacts.
func TestClusterParexpPipelinesOverOneSession(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var accepts atomic.Int32
	var mu sync.Mutex
	var jobs int
	go cluster.Serve(countingListener{Listener: ln, accepts: &accepts}, cluster.WorkerOptions{
		Logf: func(format string, args ...any) {
			if strings.Contains(format, "accepted") {
				mu.Lock()
				jobs++
				mu.Unlock()
			}
		},
	})

	dir := t.TempDir()
	// A fresh seed keeps the per-process experiment caches from satisfying
	// the sweeps before the cluster ever sees them.
	err = run([]string{"-quick", "-run", "thm2,thm3", "-parexp",
		"-seed", "987654321", "-out", dir, "-cluster", ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"thm2.txt", "thm3.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
	if n := accepts.Load(); n != 1 {
		t.Fatalf("worker saw %d connections, want exactly 1 persistent session", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if jobs < 2 {
		t.Fatalf("worker accepted %d jobs, want at least 2 pipelined over the one session", jobs)
	}
}
