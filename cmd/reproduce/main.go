// Command reproduce regenerates the paper's evaluation artifacts: one
// experiment per table and figure of Sections VI and VII, plus the Theorem 2
// bound check and a feature ablation. Reports are printed and written under
// -out as text, markdown and CSV series.
//
// Usage:
//
//	reproduce                     # run everything at default scale
//	reproduce -run fig2,tab5      # run selected experiments
//	reproduce -runs 500           # match the paper's replication count
//	reproduce -quick              # tiny smoke-scale pass
//	reproduce -parexp             # overlap whole experiments, print in order
//	reproduce -cluster h1:9631,h2:9631  # shard simulation sweeps over shardd workers
//	reproduce -list               # list experiment ids
//
// Replications always fan out across the internal/runner pool (bounded by
// -workers, default GOMAXPROCS) and merge in run order, so the emitted
// artifacts are bit-identical for every worker count. -parexp additionally
// overlaps whole experiments, which pays off when wall-clock-bound testbed
// experiments can hide behind CPU-bound sweeps; shared scenario caches are
// deduplicated, so overlapping experiments never repeat a sweep.
//
// -cluster routes every serializable simulation sweep through one
// persistent internal/cluster session instead of the in-process pool: each
// shardd worker is dialed once for the whole run, and the suite's hundreds
// of small batches pipeline over the open streams (per-batch cost is a
// couple of frames, not a dial + handshake). Failed workers' ranges are
// reassigned, across reconnects if need be. Merge order is unchanged, so
// the artifacts stay bit-identical with and without a cluster; experiments
// whose configurations cannot cross the wire (the ablation's policy
// factory) run in-process as before.
//
// -parexp combined with -cluster is shard-aware: experiment-level
// concurrency is sized to cover the workers and each experiment's batches
// carry an affinity for "its" worker, so whole serializable experiments
// stream to distinct shards instead of interleaving everywhere (idle
// workers still steal, and results are identical either way).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"smartexp3/internal/cluster"
	"smartexp3/internal/experiment"
	"smartexp3/internal/report"
	"smartexp3/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("reproduce", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiment ids and exit")
		ids     = fs.String("run", "", "comma-separated experiment ids (default: all)")
		quick   = fs.Bool("quick", false, "smoke-scale options (fast, noisy)")
		runs    = fs.Int("runs", 0, "override replication count (paper: 500)")
		slots   = fs.Int("slots", 0, "override simulation horizon (paper: 1200)")
		seed    = fs.Int64("seed", 0, "override base seed")
		workers = fs.Int("workers", 0, "override worker count (default: GOMAXPROCS)")
		parexp  = fs.Bool("parexp", false, "run whole experiments concurrently (results still print in order)")
		clstr   = fs.String("cluster", "", "comma-separated shardd addresses to shard simulation sweeps across")
		outDir  = fs.String("out", "results", "output directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	defs := experiment.All()
	if *list {
		for _, d := range defs {
			fmt.Printf("%-8s %s\n         paper: %s\n", d.ID, d.Title, d.Paper)
		}
		return nil
	}

	opts := experiment.Default()
	if *quick {
		opts = experiment.Quick()
	}
	if *runs > 0 {
		opts.Runs = *runs
		opts.TraceRuns = *runs
	}
	if *slots > 0 {
		opts.Slots = *slots
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *workers > 0 {
		opts.Workers = *workers
	}
	opts.Cluster = cluster.ParseShards(*clstr)
	if len(opts.Cluster) > 0 {
		// One persistent session for the whole run: every worker is dialed
		// once, and all experiments' batches pipeline over it.
		sess := cluster.NewSession(opts.Cluster, cluster.Options{
			LocalWorkers: opts.Workers,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "reproduce: "+format+"\n", args...)
			},
		})
		defer sess.Close()
		opts.Session = sess
	}

	selected := defs
	if *ids != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*ids, ",") {
			id = strings.TrimSpace(id)
			def, ok := experiment.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, def)
		}
	}

	type outcome struct {
		rep     *report.Report
		elapsed time.Duration
	}
	expWorkers := 1
	if *parexp {
		total := runner.Workers(opts.Workers)
		expWorkers = total
		if n := len(opts.Cluster); n > 0 {
			// Shard-aware split: with a cluster, the heavy lifting is
			// remote, so size experiment-level concurrency to cover the
			// workers (each concurrent experiment's batches carry an
			// affinity for "its" shard below) and keep the local pool for
			// merging and the in-process experiments.
			if n > expWorkers {
				expWorkers = n
			}
		}
		if expWorkers > len(selected) {
			expWorkers = len(selected)
		}
		if len(opts.Cluster) == 0 {
			// Split the worker budget between the experiment level and each
			// experiment's replication pool so the two levels multiplied
			// never oversubscribe the machine.
			opts.Workers = total / expWorkers
			if opts.Workers < 1 {
				opts.Workers = 1
			}
		}
	}
	return runner.MergeOrdered(expWorkers, len(selected),
		func(i int) (outcome, error) {
			def := selected[i]
			if !*parexp {
				fmt.Printf(">>> %s: %s\n", def.ID, def.Title)
			}
			start := time.Now()
			eopts := opts
			// Whole experiments map to workers: experiment i's serializable
			// batches prefer shard i mod nShards.
			eopts.ClusterAffinity = i + 1
			rep, err := def.Run(eopts)
			if err != nil {
				return outcome{}, fmt.Errorf("%s: %w", def.ID, err)
			}
			return outcome{rep: rep, elapsed: time.Since(start)}, nil
		},
		func(i int, out outcome) error {
			def := selected[i]
			if *parexp {
				fmt.Printf(">>> %s: %s\n", def.ID, def.Title)
			}
			fmt.Print(out.rep.String())
			fmt.Printf("(%s in %s; paper: %s)\n\n", def.ID, out.elapsed.Round(time.Millisecond), def.Paper)
			return report.WriteFiles(*outDir, out.rep)
		})
}
