// Command repolint runs the repo's custom analyzer suite
// (internal/analysis) over a package pattern and reports contract
// violations as "file:line: [check] message" lines, exiting nonzero
// when any survive their waivers.
//
// Usage:
//
//	repolint [-checks determinism,allocfree,wiredeadline,seedpurity] [packages]
//
// With no packages it analyzes ./.... The four checks enforce the
// determinism and zero-allocation contracts statically; see the
// internal/analysis package documentation for what each check flags and
// for the //repolint:ignore waiver syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"smartexp3/internal/analysis"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	dirFlag := flag.String("C", ".", "directory to run the go toolchain from")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: repolint [flags] [packages]\n\nchecks:\n")
		for _, c := range analysis.Checks() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", c.Name, c.Doc)
		}
		fmt.Fprintln(flag.CommandLine.Output(), "\nflags:")
		flag.PrintDefaults()
	}
	flag.Parse()

	checks, err := analysis.SelectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, im, err := analysis.Load(*dirFlag, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	cfg := analysis.DefaultConfig(im.Module())
	diags := analysis.Analyze(pkgs, &cfg, checks)
	wd, _ := os.Getwd()
	for _, d := range diags {
		// Render paths relative to the working directory when possible;
		// diagnostics double as clickable editor locations.
		name := d.Pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
				name = rel
			}
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, d.Pos.Line, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
