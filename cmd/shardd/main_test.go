package main

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"smartexp3/internal/cluster"
	"smartexp3/internal/core"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/obsv"
	"smartexp3/internal/runner"
	"smartexp3/internal/sim"
)

// TestRunServesCoordinator boots the daemon exactly as main would (on an
// ephemeral port) and drives a coordinator batch against it end to end.
func TestRunServesCoordinator(t *testing.T) {
	// Reserve an ephemeral port for the daemon.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	errCh := make(chan error, 1)
	go func() { errCh <- run([]string{"-listen", addr, "-quiet"}) }()

	// Wait for the listener to come up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shardd never started listening: %v", err)
		}
		select {
		case err := <-errCh:
			t.Fatalf("shardd exited early: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}

	cfg := sim.Config{
		Topology: netmodel.Setting1(),
		Devices:  sim.UniformDevices(4, core.AlgSmartEXP3),
		Slots:    40,
	}
	batch := runner.Replications{Runs: 6, Seed: 9}
	var local, remote []float64
	if err := sim.Replicate(batch, cfg, func(_ int, res *sim.Result) error {
		for d := range res.Devices {
			local = append(local, res.Devices[d].DownloadMb)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	job, err := cluster.NewJob(batch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(job, []string{addr}, cluster.Options{}, func(_ int, res *sim.Result) error {
		for d := range res.Devices {
			remote = append(remote, res.Devices[d].DownloadMb)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("got %d downloads via shardd, want %d", len(remote), len(local))
	}
	for i := range local {
		if local[i] != remote[i] {
			t.Fatalf("download %d: %v via shardd, %v locally", i, remote[i], local[i])
		}
	}
}

// TestRunRejectsBadFlags pins flag handling.
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-listen"}); err == nil {
		t.Fatal("want an error for a missing flag value")
	}
	if err := run([]string{"-listen", "not-an-address"}); err == nil ||
		!strings.Contains(err.Error(), "listen") {
		t.Fatalf("want a listen error, got %v", err)
	}
}

// TestRunDebugEndpointServesMetrics boots the daemon with -debug-addr,
// drives a batch through it, and scrapes /metrics: the text must validate
// and carry the worker-side run/range counters plus the pool gauges.
func TestRunDebugEndpointServesMetrics(t *testing.T) {
	reserve := func() string {
		probe, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := probe.Addr().String()
		probe.Close()
		return addr
	}
	addr, debugAddr := reserve(), reserve()

	errCh := make(chan error, 1)
	go func() { errCh <- run([]string{"-listen", addr, "-quiet", "-debug-addr", debugAddr}) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shardd never started listening: %v", err)
		}
		select {
		case err := <-errCh:
			t.Fatalf("shardd exited early: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}

	cfg := sim.Config{
		Topology: netmodel.Setting1(),
		Devices:  sim.UniformDevices(4, core.AlgSmartEXP3),
		Slots:    40,
	}
	job, err := cluster.NewJob(runner.Replications{Runs: 6, Seed: 9}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(job, []string{addr}, cluster.Options{}, func(int, *sim.Result) error { return nil }); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + debugAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if err := obsv.CheckPrometheusText(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics not parseable Prometheus text: %v\n%s", err, body)
	}
	for _, want := range []string{
		"cluster_worker_runs_total 6",
		"cluster_worker_jobs_total 1",
		// 2: the readiness probe above plus the real coordinator.
		"cluster_worker_sessions_total 2",
		"runner_runs_total 6",
		"cluster_worker_range_ns_count",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}
