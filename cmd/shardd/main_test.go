package main

import (
	"net"
	"strings"
	"testing"
	"time"

	"smartexp3/internal/cluster"
	"smartexp3/internal/core"
	"smartexp3/internal/netmodel"
	"smartexp3/internal/runner"
	"smartexp3/internal/sim"
)

// TestRunServesCoordinator boots the daemon exactly as main would (on an
// ephemeral port) and drives a coordinator batch against it end to end.
func TestRunServesCoordinator(t *testing.T) {
	// Reserve an ephemeral port for the daemon.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	errCh := make(chan error, 1)
	go func() { errCh <- run([]string{"-listen", addr, "-quiet"}) }()

	// Wait for the listener to come up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shardd never started listening: %v", err)
		}
		select {
		case err := <-errCh:
			t.Fatalf("shardd exited early: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}

	cfg := sim.Config{
		Topology: netmodel.Setting1(),
		Devices:  sim.UniformDevices(4, core.AlgSmartEXP3),
		Slots:    40,
	}
	batch := runner.Replications{Runs: 6, Seed: 9}
	var local, remote []float64
	if err := sim.Replicate(batch, cfg, func(_ int, res *sim.Result) error {
		for d := range res.Devices {
			local = append(local, res.Devices[d].DownloadMb)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	job, err := cluster.NewJob(batch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(job, []string{addr}, cluster.Options{}, func(_ int, res *sim.Result) error {
		for d := range res.Devices {
			remote = append(remote, res.Devices[d].DownloadMb)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("got %d downloads via shardd, want %d", len(remote), len(local))
	}
	for i := range local {
		if local[i] != remote[i] {
			t.Fatalf("download %d: %v via shardd, %v locally", i, remote[i], local[i])
		}
	}
}

// TestRunRejectsBadFlags pins flag handling.
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-listen"}); err == nil {
		t.Fatal("want an error for a missing flag value")
	}
	if err := run([]string{"-listen", "not-an-address"}); err == nil ||
		!strings.Contains(err.Error(), "listen") {
		t.Fatalf("want a listen error, got %v", err)
	}
}
