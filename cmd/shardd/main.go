// Command shardd is the replication-shard worker daemon of the cluster
// layer: it listens for coordinator sessions (cmd/simulate -shards,
// cmd/reproduce -cluster, or internal/cluster.Session directly), compiles
// each session's job descriptors into sim.Engines — once per distinct
// config, shared across the session's pipelined jobs — and executes the
// seed ranges the coordinator assigns, streaming per-run results back. A
// session stays connected across any number of jobs, answering keepalive
// pings while idle, so a suite of many small batches pays the dial and
// handshake once.
//
// A shardd holds no batch state of its own: seeds derive deterministically
// from the job descriptor and the global run index, so any worker (or the
// coordinator itself) can re-run a range that a killed worker never
// finished, with bit-identical results.
//
// Usage:
//
//	shardd                         # listen on 127.0.0.1:9631
//	shardd -listen 0.0.0.0:9631    # accept coordinators from the network
//	shardd -workers 8              # bound per-connection parallelism
//
// The protocol is unauthenticated and unencrypted (stdlib gob over TCP):
// run shardd only on networks where every peer is trusted, exactly like a
// memcached or a work-queue worker.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"smartexp3/internal/cluster"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shardd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("shardd", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:9631", "address to accept coordinator connections on")
		workers = fs.Int("workers", 0, "parallelism per coordinator connection (default: GOMAXPROCS)")
		quiet   = fs.Bool("quiet", false, "suppress per-connection log lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	logger := log.New(os.Stderr, "shardd: ", log.LstdFlags)
	opts := cluster.WorkerOptions{Workers: *workers}
	if !*quiet {
		opts.Logf = logger.Printf
	}
	logger.Printf("listening on %s", ln.Addr())
	return cluster.Serve(ln, opts)
}
