// Command shardd is the replication-shard worker daemon of the cluster
// layer: it listens for coordinator sessions (cmd/simulate -shards,
// cmd/reproduce -cluster, or internal/cluster.Session directly), compiles
// each session's job descriptors into sim.Engines — once per distinct
// config, shared across the session's pipelined jobs — and executes the
// seed ranges the coordinator assigns, streaming per-run results back. A
// session stays connected across any number of jobs, answering keepalive
// pings while idle, so a suite of many small batches pays the dial and
// handshake once.
//
// A shardd holds no batch state of its own: seeds derive deterministically
// from the job descriptor and the global run index, so any worker (or the
// coordinator itself) can re-run a range that a killed worker never
// finished, with bit-identical results.
//
// Usage:
//
//	shardd                         # listen on 127.0.0.1:9631
//	shardd -listen 0.0.0.0:9631    # accept coordinators from the network
//	shardd -workers 8              # bound per-connection parallelism
//	shardd -debug-addr :9634       # /metrics, /varz, /debug/pprof/
//
// With -debug-addr set, the worker serves its instrumentation (sessions,
// jobs, ranges, runs, wire frames and bytes, per-range latency, pool
// utilization) on a second HTTP listener; -metrics-log-every instead (or
// additionally) logs a structured delta line at that interval. Metrics are
// observation-only: results are bit-identical with or without them.
//
// The protocol is unauthenticated and unencrypted (stdlib gob over TCP):
// run shardd only on networks where every peer is trusted, exactly like a
// memcached or a work-queue worker.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"

	"smartexp3/internal/cluster"
	"smartexp3/internal/obsv"
	"smartexp3/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shardd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("shardd", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:9631", "address to accept coordinator connections on")
		workers  = fs.Int("workers", 0, "parallelism per coordinator connection (default: GOMAXPROCS)")
		debug    = fs.String("debug-addr", "", "serve /metrics, /varz and /debug/pprof/ on this address (empty disables)")
		logEvery = fs.Duration("metrics-log-every", 0, "emit a structured metrics-delta log line at this interval (0 disables)")
		quiet    = fs.Bool("quiet", false, "suppress per-connection log lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(os.Stderr, "shardd: ", log.LstdFlags)
	opts := cluster.WorkerOptions{Workers: *workers}
	if !*quiet {
		opts.Logf = logger.Printf
	}
	if *debug != "" || *logEvery > 0 {
		reg := obsv.NewRegistry()
		runner.Instrument(reg)
		opts.Metrics = cluster.NewWorkerMetrics(reg)
		if *debug != "" {
			ds, err := obsv.ListenAndServe(*debug, reg)
			if err != nil {
				return err
			}
			defer ds.Close()
			logger.Printf("debug endpoints on http://%s/ (/metrics, /varz, /debug/pprof/)", ds.Addr())
		}
		if *logEvery > 0 {
			dl := obsv.NewDeltaLogger(reg, slog.New(slog.NewTextHandler(os.Stderr, nil)))
			go dl.Run(*logEvery, nil)
		}
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	logger.Printf("listening on %s", ln.Addr())
	return cluster.Serve(ln, opts)
}
