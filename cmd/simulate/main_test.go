package main

import (
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smartexp3/internal/cluster"
)

func TestParseTopology(t *testing.T) {
	tests := []struct {
		give       string
		wantNets   int
		wantErr    bool
		wantSpread bool
	}{
		{give: "setting1", wantNets: 3},
		{give: "SETTING2", wantNets: 3},
		{give: "foodcourt", wantNets: 5},
		{give: "uniform:5:11", wantNets: 5},
		{give: "large", wantNets: 204, wantSpread: true},
		{give: "metro:4:3:2", wantNets: 14, wantSpread: true},
		{give: "uniform:bad", wantErr: true},
		{give: "uniform:x:11", wantErr: true},
		{give: "uniform:5:y", wantErr: true},
		// Malformed metro specs must come back as errors, never panics:
		// parseTopology validates the spec before Generate (which panics on
		// invalid specs by contract) ever sees it.
		{give: "metro:4:3", wantErr: true},                   // too few dimensions
		{give: "metro:4:3:2:1", wantErr: true},               // too many dimensions
		{give: "metro:0:3:2", wantErr: true},                 // zero areas
		{give: "metro:-1:3:2", wantErr: true},                // negative areas
		{give: "metro:a:3:2", wantErr: true},                 // non-numeric areas
		{give: "metro:4:b:2", wantErr: true},                 // non-numeric APs
		{give: "metro:4:3:c", wantErr: true},                 // non-numeric cells
		{give: "metro:2:0:0", wantErr: true},                 // every area empty
		{give: "metro:2:-1:2", wantErr: true},                // negative APs
		{give: "metro:2:2:-2", wantErr: true},                // negative cells
		{give: "metro:", wantErr: true},                      // nothing at all
		{give: "metro:2:0:3", wantNets: 3, wantSpread: true}, // cells-only metro is valid
		{give: "mars", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			top, spread, err := parseTopology(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(top.Networks) != tt.wantNets {
				t.Fatalf("got %d networks, want %d", len(top.Networks), tt.wantNets)
			}
			if spread != tt.wantSpread {
				t.Fatalf("spread = %v, want %v", spread, tt.wantSpread)
			}
			if err := top.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunLargeTopology exercises the `-topology large` path end to end at a
// small horizon: 204 networks, 40 areas, devices spread round-robin.
func TestRunLargeTopology(t *testing.T) {
	if err := run([]string{"-topology", "large", "-devices", "60", "-slots", "12", "-runs", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallSimulation(t *testing.T) {
	if err := run([]string{"-devices", "4", "-slots", "60", "-algorithm", "greedy"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownAlgorithm(t *testing.T) {
	err := run([]string{"-algorithm", "sarsa", "-slots", "10"})
	if err == nil || !strings.Contains(err.Error(), "algorithm") {
		t.Fatalf("error = %v", err)
	}
}

func TestWriteAndReplayConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := run([]string{"-devices", "3", "-slots", "40", "-writeconfig", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsMissingConfig(t *testing.T) {
	if err := run([]string{"-config", "/nonexistent/sc.json"}); err == nil {
		t.Fatal("want error for missing config file")
	}
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	w.Close()
	out := <-done
	os.Stdout = orig
	if runErr != nil {
		t.Fatal(runErr)
	}
	return out
}

// aggregateLines drops the header ("replications N (workers|shards ...)")
// and returns the aggregate block, which must be byte-identical across
// execution shapes.
func aggregateLines(t *testing.T, out string) string {
	t.Helper()
	_, rest, ok := strings.Cut(out, "\n")
	if !ok || !strings.HasPrefix(out, "replications") {
		t.Fatalf("unexpected replication output:\n%s", out)
	}
	return rest
}

// TestShardsRejectNonSerializableConfigUpFront pins the early validation: a
// configuration that cannot cross the wire (here a JSON scenario with an
// explicitly empty device-group list, which gob cannot distinguish from an
// absent one) combined with -shards must fail immediately with the reason,
// not deep inside the cluster dispatch. The shard address points at a
// reserved port nothing listens on: the error must arrive without a dial
// attempt ever mattering.
func TestShardsRejectNonSerializableConfigUpFront(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	scenario := `{
		"name": "grouped",
		"networks": [{"name": "a", "type": "wifi", "bandwidthMbps": 10}],
		"devices": [{"algorithm": "smart", "count": 3}],
		"slots": 20,
		"groups": []
	}`
	if err := os.WriteFile(path, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-config", path, "-runs", "4", "-shards", "127.0.0.1:1"})
	if err == nil || !strings.Contains(err.Error(), "cannot run on a cluster") {
		t.Fatalf("want an upfront -shards validation error, got %v", err)
	}
	// Without -shards the same scenario runs fine in-process.
	if err := run([]string{"-config", path, "-runs", "2"}); err != nil {
		t.Fatalf("in-process run of the same scenario failed: %v", err)
	}
}

// TestShardedAggregatesMatchInProcess is the CLI half of the acceptance
// criterion: for a fixed seed, `simulate -runs N` and `simulate -runs N
// -shards a,b` print byte-identical aggregate lines.
func TestShardedAggregatesMatchInProcess(t *testing.T) {
	args := []string{"-topology", "setting1", "-devices", "5", "-slots", "50", "-runs", "12", "-seed", "7"}
	local := captureStdout(t, func() error { return run(args) })

	var addrs []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go cluster.Serve(ln, cluster.WorkerOptions{})
		addrs = append(addrs, ln.Addr().String())
	}
	sharded := captureStdout(t, func() error {
		return run(append(args, "-shards", strings.Join(addrs, ",")))
	})

	if aggregateLines(t, sharded) != aggregateLines(t, local) {
		t.Fatalf("sharded aggregates differ from in-process:\nlocal:\n%s\nsharded:\n%s", local, sharded)
	}
}

// sweepBlocks splits a -seeds sweep's output into per-seed aggregate
// blocks, dropping the "seed N: replications ..." header of each.
func sweepBlocks(t *testing.T, out string) []string {
	t.Helper()
	var blocks []string
	cur := -1
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "seed ") {
			blocks = append(blocks, "")
			cur++
			continue
		}
		if cur >= 0 && line != "" {
			blocks[cur] += line + "\n"
		}
	}
	return blocks
}

// countingListener counts accepted connections, so the sweep test can
// assert the session shape, not just the results.
type countingListener struct {
	net.Listener
	accepted int
}

func (cl *countingListener) Accept() (net.Conn, error) {
	c, err := cl.Listener.Accept()
	if err == nil {
		cl.accepted++
	}
	return c, err
}

// TestSeedSweepMatchesPerSeedRunsOverOneSession is the -seeds acceptance
// check: each seed's aggregate block is byte-identical to a standalone
// -seed run of the same batch, in-process and sharded — and the sharded
// sweep holds ONE session, so each worker accepts exactly one connection
// for the whole multi-seed sweep.
func TestSeedSweepMatchesPerSeedRunsOverOneSession(t *testing.T) {
	base := []string{"-topology", "setting1", "-devices", "5", "-slots", "50", "-runs", "8"}
	seeds := []string{"7", "11"}
	var want []string
	for _, s := range seeds {
		out := captureStdout(t, func() error { return run(append(base, "-seed", s)) })
		want = append(want, aggregateLines(t, out))
	}

	local := captureStdout(t, func() error {
		return run(append(base, "-seeds", strings.Join(seeds, ",")))
	})
	for i, got := range sweepBlocks(t, local) {
		if got != want[i] {
			t.Fatalf("in-process sweep block for seed %s differs:\n%s\nwant:\n%s", seeds[i], got, want[i])
		}
	}

	var addrs []string
	var listeners []*countingListener
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		cl := &countingListener{Listener: ln}
		go cluster.Serve(cl, cluster.WorkerOptions{})
		listeners = append(listeners, cl)
		addrs = append(addrs, ln.Addr().String())
	}
	sharded := captureStdout(t, func() error {
		return run(append(base, "-seeds", strings.Join(seeds, ","), "-shards", strings.Join(addrs, ",")))
	})
	for i, got := range sweepBlocks(t, sharded) {
		if got != want[i] {
			t.Fatalf("sharded sweep block for seed %s differs:\n%s\nwant:\n%s", seeds[i], got, want[i])
		}
	}
	for i, cl := range listeners {
		if cl.accepted != 1 {
			t.Fatalf("worker %d accepted %d connections over the sweep, want exactly 1", i, cl.accepted)
		}
	}

	if err := run(append(base, "-seeds", "7,x")); err == nil ||
		!strings.Contains(err.Error(), "-seeds entry") {
		t.Fatalf("malformed -seeds must be rejected, got %v", err)
	}
}

// TestRunWithDebugAddr smokes the -debug-addr flag: the run must bring the
// debug listener up, complete normally, and reject an unbindable address.
func TestRunWithDebugAddr(t *testing.T) {
	if err := run([]string{"-devices", "4", "-slots", "30", "-runs", "3", "-debug-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-devices", "4", "-slots", "10", "-debug-addr", "not-an-address"}); err == nil {
		t.Fatal("want an error for an unbindable -debug-addr")
	}
}
