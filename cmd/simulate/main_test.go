package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestParseTopology(t *testing.T) {
	tests := []struct {
		give       string
		wantNets   int
		wantErr    bool
		wantSpread bool
	}{
		{give: "setting1", wantNets: 3},
		{give: "SETTING2", wantNets: 3},
		{give: "foodcourt", wantNets: 5},
		{give: "uniform:5:11", wantNets: 5},
		{give: "large", wantNets: 204, wantSpread: true},
		{give: "metro:4:3:2", wantNets: 14, wantSpread: true},
		{give: "uniform:bad", wantErr: true},
		{give: "uniform:x:11", wantErr: true},
		{give: "uniform:5:y", wantErr: true},
		{give: "metro:4:3", wantErr: true},
		{give: "metro:0:3:2", wantErr: true},
		{give: "metro:a:3:2", wantErr: true},
		{give: "mars", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			top, spread, err := parseTopology(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(top.Networks) != tt.wantNets {
				t.Fatalf("got %d networks, want %d", len(top.Networks), tt.wantNets)
			}
			if spread != tt.wantSpread {
				t.Fatalf("spread = %v, want %v", spread, tt.wantSpread)
			}
			if err := top.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunLargeTopology exercises the `-topology large` path end to end at a
// small horizon: 204 networks, 40 areas, devices spread round-robin.
func TestRunLargeTopology(t *testing.T) {
	if err := run([]string{"-topology", "large", "-devices", "60", "-slots", "12", "-runs", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallSimulation(t *testing.T) {
	if err := run([]string{"-devices", "4", "-slots", "60", "-algorithm", "greedy"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownAlgorithm(t *testing.T) {
	err := run([]string{"-algorithm", "sarsa", "-slots", "10"})
	if err == nil || !strings.Contains(err.Error(), "algorithm") {
		t.Fatalf("error = %v", err)
	}
}

func TestWriteAndReplayConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := run([]string{"-devices", "3", "-slots", "40", "-writeconfig", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsMissingConfig(t *testing.T) {
	if err := run([]string{"-config", "/nonexistent/sc.json"}); err == nil {
		t.Fatal("want error for missing config file")
	}
}
