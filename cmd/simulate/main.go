// Command simulate runs one ad-hoc wireless network selection simulation and
// prints a per-device and run-level summary.
//
// Usage:
//
//	simulate -topology setting1 -algorithm smart -devices 20 -slots 1200
//	simulate -topology uniform:5:11 -algorithm greedy
//	simulate -topology foodcourt -algorithm exp3 -seed 7
//	simulate -runs 32 -workers 8              # parallel Monte Carlo replication
//	simulate -runs 96 -shards h1:9631,h2:9631 # shard the batch across workers
//	simulate -runs 24 -seeds 7,8,9            # one aggregate block per seed
//	simulate -config scenario.json            # declarative JSON scenario
//	simulate -writeconfig scenario.json ...   # save the flags as a scenario
//	simulate -runs 96 -debug-addr :9634       # watch /metrics + pprof live
//
// With -runs above 1 the scenario is replicated across the internal/runner
// worker pool: each replication gets its own RNG stream derived from -seed
// and the run index, and results merge in run order, so the printed
// aggregate is a pure function of the seed regardless of -workers.
//
// With -shards the batch is sharded across remote shardd workers
// (cmd/shardd) through internal/cluster: seed ranges are dispatched over
// TCP, a failed worker's unacknowledged ranges are reassigned, and results
// merge in the same global run order — the aggregate lines are
// byte-identical to an in-process run of the same seed, for any shard
// count, even when workers die mid-batch.
//
// With -seeds the whole -runs batch is swept once per listed seed. A
// sharded sweep holds ONE persistent cluster session for all of it: each
// shardd daemon sees exactly one connection carrying every batch, not a
// redial per seed — CI's cluster smoke job asserts that shape from the
// daemon logs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"smartexp3"
	"smartexp3/internal/cluster"
	"smartexp3/internal/obsv"
	"smartexp3/internal/runner"
	"smartexp3/internal/scenario"
	"smartexp3/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

var algorithmsByName = map[string]smartexp3.Algorithm{
	"exp3":        smartexp3.AlgEXP3,
	"block":       smartexp3.AlgBlockEXP3,
	"hybrid":      smartexp3.AlgHybridBlockEXP3,
	"smartnr":     smartexp3.AlgSmartEXP3NoReset,
	"smart":       smartexp3.AlgSmartEXP3,
	"greedy":      smartexp3.AlgGreedy,
	"fullinfo":    smartexp3.AlgFullInformation,
	"fixed":       smartexp3.AlgFixedRandom,
	"centralized": smartexp3.AlgCentralized,
}

func run(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		topoName  = fs.String("topology", "setting1", "setting1 | setting2 | foodcourt | uniform:<k>:<mbps> | large | metro:<areas>:<aps>:<cells>")
		algName   = fs.String("algorithm", "smart", "exp3|block|hybrid|smartnr|smart|greedy|fullinfo|fixed|centralized")
		devices   = fs.Int("devices", 20, "number of devices")
		slots     = fs.Int("slots", 1200, "number of 15 s time slots")
		seed      = fs.Int64("seed", 1, "random seed")
		seedsList = fs.String("seeds", "", "comma-separated seed sweep: run the -runs batch once per seed (overrides -seed)")
		runs      = fs.Int("runs", 1, "Monte Carlo replications of the scenario")
		workers   = fs.Int("workers", 0, "replication worker count (default: GOMAXPROCS)")
		shards    = fs.String("shards", "", "comma-separated shardd addresses to shard replications across")
		confPath  = fs.String("config", "", "run a JSON scenario file instead of the flags")
		writePath = fs.String("writeconfig", "", "write the flag-defined scenario as JSON and exit")
		debug     = fs.String("debug-addr", "", "serve /metrics, /varz and /debug/pprof/ on this address for the duration of the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg smartexp3.SimConfig
	if *confPath != "" {
		f, err := os.Open(*confPath)
		if err != nil {
			return err
		}
		sc, err := scenario.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		if cfg, err = sc.ToConfig(); err != nil {
			return err
		}
		fmt.Printf("scenario %q: %s\n", sc.Name, sc.Description)
	} else {
		alg, ok := algorithmsByName[strings.ToLower(*algName)]
		if !ok {
			return fmt.Errorf("unknown algorithm %q", *algName)
		}
		topo, generated, err := parseTopology(*topoName)
		if err != nil {
			return err
		}
		devs := smartexp3.UniformDevices(*devices, alg)
		if generated {
			// Generated metropolitan topologies have many service areas;
			// spread the population over them round-robin.
			devs = smartexp3.SpreadDevices(*devices, alg, len(topo.Areas))
		}
		cfg = smartexp3.SimConfig{
			Topology: topo,
			Devices:  devs,
			Slots:    *slots,
			Seed:     *seed,
		}
	}
	cfg.Collect = smartexp3.CollectOptions{Distance: true, Probabilities: true}

	if *writePath != "" {
		f, err := os.Create(*writePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := scenario.Write(f, scenario.FromConfig("scenario", cfg)); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *writePath)
		return nil
	}

	shardAddrs := cluster.ParseShards(*shards)
	if len(shardAddrs) > 0 {
		// Validate up front: a configuration that cannot cross the wire
		// (custom samplers, or a JSON scenario's explicitly empty groups)
		// should fail here with the reason, not deep inside the dispatch
		// with a per-worker job rejection.
		if err := cluster.Shardable(cfg); err != nil {
			return fmt.Errorf("-shards: this configuration cannot run on a cluster: %v; drop -shards to run it in-process (reproduce -cluster falls back the same way for its PolicyFactory ablation)", err)
		}
	}

	// The debug listener observes the run: pool utilization and (for a
	// sharded batch) session wire counters, with pprof for live profiling.
	// Observation-only — the printed aggregates are identical either way.
	var reg *obsv.Registry
	if *debug != "" {
		reg = obsv.NewRegistry()
		runner.Instrument(reg)
		ds, err := obsv.ListenAndServe(*debug, reg)
		if err != nil {
			return err
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "simulate: debug endpoints on http://%s/\n", ds.Addr())
	}

	if *seedsList != "" {
		seeds, err := parseSeeds(*seedsList)
		if err != nil {
			return err
		}
		return runSweep(cfg, seeds, *runs, *workers, shardAddrs, reg)
	}
	if *runs > 1 || len(shardAddrs) > 0 {
		return runReplicated(cfg, *runs, *workers, shardAddrs, reg)
	}

	res, err := smartexp3.Simulate(cfg)
	if err != nil {
		return err
	}

	var switches, downloads, resets []float64
	for d := range res.Devices {
		switches = append(switches, float64(res.Devices[d].Switches))
		resets = append(resets, float64(res.Devices[d].Resets))
		downloads = append(downloads, smartexp3.MbToGB(res.Devices[d].DownloadMb))
	}
	algs := make(map[string]int)
	for _, d := range cfg.Devices {
		algs[d.Algorithm.String()]++
	}
	fmt.Printf("algorithms           ")
	first := true
	for name, n := range algs {
		if !first {
			fmt.Print(", ")
		}
		fmt.Printf("%s x%d", name, n)
		first = false
	}
	fmt.Println()
	fmt.Printf("devices x slots      %d x %d\n", len(cfg.Devices), cfg.Slots)
	fmt.Printf("switches/device      mean %.1f  sd %.1f\n", stats.Mean(switches), stats.StdDev(switches))
	fmt.Printf("resets/device        mean %.1f\n", stats.Mean(resets))
	fmt.Printf("download/device      median %.2f GB  sd %.0f MB\n",
		stats.Median(downloads), stats.StdDev(downloads)*1000)
	fmt.Printf("time at NE           %.1f%%  (within eps=7.5: %.1f%%)\n",
		100*res.FracAtNE, 100*res.FracAtEps)
	fmt.Printf("unused resources     %.2f GB of %.2f GB\n",
		smartexp3.MbToGB(res.UnusedMb), smartexp3.MbToGB(res.TotalMb))
	if res.StabilityValid {
		fmt.Printf("stable (Def. 2)      %v (slot %d, at NE: %v)\n",
			res.Stability.Stable, res.Stability.Slot, res.Stability.AtNash)
	}
	if len(res.Distance) > 0 {
		late := res.Distance[len(res.Distance)*3/4:]
		fmt.Printf("late distance to NE  %.2f%%\n", stats.Mean(late))
	}
	return nil
}

// runReplicated executes the scenario runs times — across the in-process
// worker pool, or across remote shardd workers when shards are given — each
// replication on its own RNG stream, and prints run-order-deterministic
// aggregate statistics. Only the header line mentions the execution shape;
// every aggregate line below it is byte-identical across worker and shard
// counts.
func runReplicated(cfg smartexp3.SimConfig, runs, workers int, shards []string, reg *obsv.Registry) error {
	agg := &replicateStats{}
	merge := agg.merge
	batch := runner.Replications{Runs: runs, Workers: workers, Seed: cfg.Seed}
	if len(shards) > 0 {
		job, err := cluster.NewJob(batch, cfg)
		if err != nil {
			return err
		}
		opts := cluster.Options{
			LocalWorkers: workers,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "simulate: "+format+"\n", args...)
			},
		}
		if reg != nil {
			opts.Metrics = cluster.NewSessionMetrics(reg)
		}
		if err := cluster.Run(job, shards, opts, merge); err != nil {
			return err
		}
		fmt.Printf("replications         %d (shards %d)\n", runs, len(shards))
		return agg.print(cfg, runs)
	}
	eng, err := smartexp3.NewSimEngine(cfg)
	if err != nil {
		return err
	}
	err = runner.MergePooled(batch,
		eng.NewWorkspace,
		func(ws *smartexp3.SimWorkspace, run int, seed int64) (*smartexp3.SimResult, error) {
			return eng.Run(ws, seed)
		},
		merge)
	if err != nil {
		return err
	}
	fmt.Printf("replications         %d (workers %d)\n", runs, runner.Workers(workers))
	return agg.print(cfg, runs)
}

// replicateStats accumulates one replication batch's aggregates; merge is
// called in global run order, so the printed lines are a pure function of
// the seed regardless of execution shape.
type replicateStats struct {
	switches  []float64 // per device, pooled over runs
	downloads []float64 // per run: median over devices (GB)
	fairness  []float64 // per run: stddev over devices (MB)
	atNE      []float64
	atEps     []float64
	stable    int
}

func (a *replicateStats) merge(_ int, res *smartexp3.SimResult) error {
	var dls []float64
	for d := range res.Devices {
		a.switches = append(a.switches, float64(res.Devices[d].Switches))
		dls = append(dls, res.Devices[d].DownloadMb)
	}
	a.downloads = append(a.downloads, smartexp3.MbToGB(stats.Median(dls)))
	a.fairness = append(a.fairness, smartexp3.MbToMB(stats.StdDev(dls)))
	a.atNE = append(a.atNE, res.FracAtNE)
	a.atEps = append(a.atEps, res.FracAtEps)
	if res.StabilityValid && res.Stability.Stable {
		a.stable++
	}
	return nil
}

// print emits the aggregate lines shared by the in-process and sharded
// paths; CI's cluster smoke job diffs exactly these lines between a
// sharded and a single-process run.
func (a *replicateStats) print(cfg smartexp3.SimConfig, runs int) error {
	fmt.Printf("devices x slots      %d x %d\n", len(cfg.Devices), cfg.Slots)
	fmt.Printf("switches/device      mean %.1f  sd %.1f\n", stats.Mean(a.switches), stats.StdDev(a.switches))
	fmt.Printf("median download      mean %.2f GB  sd %.2f GB\n", stats.Mean(a.downloads), stats.StdDev(a.downloads))
	fmt.Printf("fairness sd          mean %.0f MB\n", stats.Mean(a.fairness))
	fmt.Printf("time at NE           %.1f%%  (within eps=7.5: %.1f%%)\n",
		100*stats.Mean(a.atNE), 100*stats.Mean(a.atEps))
	fmt.Printf("stable runs          %d/%d\n", a.stable, runs)
	return nil
}

// parseSeeds decodes the -seeds sweep list.
func parseSeeds(s string) ([]int64, error) {
	var seeds []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-seeds entry %q: %w", part, err)
		}
		seeds = append(seeds, v)
	}
	return seeds, nil
}

// runSweep replicates the scenario -runs times per seed, one aggregate
// block per seed. The sharded path is the reason this exists as its own
// loop rather than repeated runReplicated calls: every batch in the sweep
// rides ONE persistent cluster session, so each shardd daemon sees exactly
// one connection for the whole sweep — no per-seed redial, and a worker
// lost mid-sweep is redialed by the session, not abandoned between
// batches. Each seed's block is byte-identical to runReplicated of that
// seed below the header line.
func runSweep(cfg smartexp3.SimConfig, seeds []int64, runs, workers int, shards []string, reg *obsv.Registry) error {
	var sess *cluster.Session
	if len(shards) > 0 {
		opts := cluster.Options{
			LocalWorkers: workers,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "simulate: "+format+"\n", args...)
			},
		}
		if reg != nil {
			opts.Metrics = cluster.NewSessionMetrics(reg)
		}
		sess = cluster.NewSession(shards, opts)
		defer sess.Close()
	}
	for _, seed := range seeds {
		cfg.Seed = seed
		agg := &replicateStats{}
		batch := runner.Replications{Runs: runs, Workers: workers, Seed: seed}
		if sess != nil {
			job, err := cluster.NewJob(batch, cfg)
			if err != nil {
				return err
			}
			if err := sess.Run(job, agg.merge); err != nil {
				return err
			}
			fmt.Printf("seed %d: replications %d (shards %d)\n", seed, runs, len(shards))
		} else {
			eng, err := smartexp3.NewSimEngine(cfg)
			if err != nil {
				return err
			}
			err = runner.MergePooled(batch,
				eng.NewWorkspace,
				func(ws *smartexp3.SimWorkspace, run int, seed int64) (*smartexp3.SimResult, error) {
					return eng.Run(ws, seed)
				},
				agg.merge)
			if err != nil {
				return err
			}
			fmt.Printf("seed %d: replications %d (workers %d)\n", seed, runs, runner.Workers(workers))
		}
		if err := agg.print(cfg, runs); err != nil {
			return err
		}
	}
	return nil
}

// parseTopology resolves a -topology argument. The second return value
// reports whether the topology is a generated multi-area one (the caller
// then spreads devices over its areas).
func parseTopology(name string) (smartexp3.Topology, bool, error) {
	switch strings.ToLower(name) {
	case "setting1":
		return smartexp3.Setting1(), false, nil
	case "setting2":
		return smartexp3.Setting2(), false, nil
	case "foodcourt":
		return smartexp3.FoodCourt(), false, nil
	case "large":
		return smartexp3.LargeTopology(), true, nil
	}
	if rest, ok := strings.CutPrefix(strings.ToLower(name), "uniform:"); ok {
		parts := strings.Split(rest, ":")
		if len(parts) != 2 {
			return smartexp3.Topology{}, false, fmt.Errorf("topology %q: want uniform:<k>:<mbps>", name)
		}
		k, err := strconv.Atoi(parts[0])
		if err != nil {
			return smartexp3.Topology{}, false, fmt.Errorf("topology %q: bad network count: %w", name, err)
		}
		bw, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return smartexp3.Topology{}, false, fmt.Errorf("topology %q: bad bandwidth: %w", name, err)
		}
		return smartexp3.UniformTopology(k, bw), false, nil
	}
	if rest, ok := strings.CutPrefix(strings.ToLower(name), "metro:"); ok {
		parts := strings.Split(rest, ":")
		if len(parts) != 3 {
			return smartexp3.Topology{}, false, fmt.Errorf("topology %q: want metro:<areas>:<aps>:<cells>", name)
		}
		var dims [3]int
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				return smartexp3.Topology{}, false, fmt.Errorf("topology %q: bad dimension %q: %w", name, p, err)
			}
			dims[i] = v
		}
		spec := smartexp3.TopologySpec{Areas: dims[0], APsPerArea: dims[1], Cells: dims[2]}
		if spec.APsPerArea > 0 && spec.Areas > 1 {
			spec.Overlap = 1
		}
		if err := spec.Validate(); err != nil {
			return smartexp3.Topology{}, false, err
		}
		return smartexp3.GenerateTopology(spec), true, nil
	}
	return smartexp3.Topology{}, false, fmt.Errorf("unknown topology %q", name)
}
