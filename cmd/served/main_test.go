package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"smartexp3/internal/obsv"
	"smartexp3/internal/serve"
)

// bootDaemon starts run() as main would, on an ephemeral port, and waits
// for the listener. It returns the address and the daemon's exit channel.
func bootDaemon(t *testing.T, extra ...string) (string, chan error) {
	t.Helper()
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	errCh := make(chan error, 1)
	go func() { errCh <- run(append([]string{"-listen", addr, "-quiet"}, extra...)) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			return addr, errCh
		}
		if time.Now().After(deadline) {
			t.Fatalf("served never started listening: %v", err)
		}
		select {
		case err := <-errCh:
			t.Fatalf("served exited early: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// driveDaemon runs the scripted slots [from, to) against the daemon and
// returns the selections. The final Ping is the barrier that proves the
// daemon applied every buffered feedback report before we move on.
func driveDaemon(t *testing.T, addr string, from, to int) []int {
	t.Helper()
	c, err := serve.Dial(addr, serve.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	arms := []int{10, 20, 30}
	var out []int
	for slot := from; slot < to; slot++ {
		for _, dev := range []uint64{1, 2} {
			arm, err := c.Select(dev, arms)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, arm)
			if err := c.Feedback(dev, arm, float64(arm%7)/7); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunSnapshotCycleResumesBitIdentically is the daemon-level half of the
// snapshot contract: serve traffic, SIGTERM (flushes state), reboot from
// the snapshot, continue — the rebooted daemon must decide exactly as an
// uninterrupted store fed the same script.
func TestRunSnapshotCycleResumesBitIdentically(t *testing.T) {
	const cut, end = 60, 120
	snap := filepath.Join(t.TempDir(), "state.snap")

	// Uninterrupted reference: the same script against an in-process store
	// with the daemon's defaults.
	ref, err := serve.NewStore(serve.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	arms := []int{10, 20, 30}
	var want []int
	for slot := 0; slot < end; slot++ {
		for _, dev := range []uint64{1, 2} {
			arm, sl, err := ref.Select(dev, arms)
			if err != nil {
				t.Fatal(err)
			}
			if slot >= cut {
				want = append(want, arm)
			}
			ref.Feedback(dev, arm, sl, float64(arm%7)/7)
		}
	}

	addr, errCh := bootDaemon(t, "-snapshot", snap)
	driveDaemon(t, addr, 0, cut)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("SIGTERM did not flush the snapshot: %v", err)
	}

	addr2, errCh2 := bootDaemon(t, "-snapshot", snap)
	got := driveDaemon(t, addr2, cut, end)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("selection %d after reboot: daemon chose %d, uninterrupted store %d", i, got[i], want[i])
		}
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh2:
		if err != nil {
			t.Fatalf("second SIGTERM exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("rebooted daemon did not exit on SIGTERM")
	}
}

// TestRunRejectsBadFlags pins the flag surface.
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-alg", "greedy"}); err == nil ||
		!strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("greedy must be rejected (no exportable state), got %v", err)
	}
	if err := run([]string{"-snapshot-every", "1m"}); err == nil ||
		!strings.Contains(err.Error(), "requires -snapshot") {
		t.Fatalf("-snapshot-every without -snapshot must be rejected, got %v", err)
	}
	if err := run([]string{"-evict-every", "1m"}); err == nil ||
		!strings.Contains(err.Error(), "requires -evict-idle") {
		t.Fatalf("-evict-every without -evict-idle must be rejected, got %v", err)
	}
	if err := run([]string{"-listen", "not-an-address"}); err == nil {
		t.Fatal("want a listen error")
	}
}

// TestRunEvictsIdleDevicesDeterministically boots the daemon with a short
// idle TTL, lets a device's session go quiet past it, and proves both
// halves of the eviction contract: the session is really gone (the re-join
// decides like a brand-new device replayed from the root seed, not like a
// continuation), and a device kept busy decides exactly as if eviction
// were disabled.
func TestRunEvictsIdleDevicesDeterministically(t *testing.T) {
	addr, errCh := bootDaemon(t, "-evict-idle", "150ms", "-evict-every", "25ms")
	defer func() {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("SIGTERM exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not exit on SIGTERM")
		}
	}()

	first := driveDaemon(t, addr, 0, 20)

	// The daemon's defaults, replayed twice in process: what the re-joined
	// device must decide if eviction really reset it.
	ref, err := serve.NewStore(serve.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	arms := []int{10, 20, 30}
	var fresh []int
	for slot := 0; slot < 20; slot++ {
		for _, dev := range []uint64{1, 2} {
			arm, sl, err := ref.Select(dev, arms)
			if err != nil {
				t.Fatal(err)
			}
			fresh = append(fresh, arm)
			ref.Feedback(dev, arm, sl, float64(arm%7)/7)
		}
	}
	for i := range fresh {
		if first[i] != fresh[i] {
			t.Fatalf("selection %d: daemon chose %d, reference store %d", i, first[i], fresh[i])
		}
	}

	// Idle past the TTL: the sweep must retire both devices.
	time.Sleep(500 * time.Millisecond)

	again := driveDaemon(t, addr, 0, 20)
	for i := range fresh {
		if again[i] != fresh[i] {
			t.Fatalf("selection %d after eviction: daemon chose %d, a from-seed replay chooses %d — the idle session survived or resumed dirty",
				i, again[i], fresh[i])
		}
	}
}

// freePort reserves an ephemeral loopback address and releases it for the
// daemon to bind.
func freePort(t *testing.T) string {
	t.Helper()
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()
	return addr
}

// TestRunDebugEndpointServesMetrics is the acceptance check for the debug
// listener: boot with -debug-addr, drive real traffic, and the /metrics
// scrape must be parseable Prometheus text carrying the select count, the
// select-latency histogram, the eviction count, and the connection count —
// with /varz and /debug/pprof/ alive on the same listener.
func TestRunDebugEndpointServesMetrics(t *testing.T) {
	debugAddr := freePort(t)
	addr, errCh := bootDaemon(t,
		"-debug-addr", debugAddr,
		"-evict-idle", "150ms", "-evict-every", "25ms")
	defer func() {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("SIGTERM exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not exit on SIGTERM")
		}
	}()

	// 70 slots per device crosses the 1-in-64 latency sampler however the
	// devices hash across shards.
	driveDaemon(t, addr, 0, 70)

	scrape := func() string {
		t.Helper()
		resp, err := http.Get("http://" + debugAddr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := obsv.CheckPrometheusText(bytes.NewReader(body)); err != nil {
			t.Fatalf("/metrics not parseable Prometheus text: %v\n%s", err, body)
		}
		return string(body)
	}

	text := scrape()
	for _, want := range []string{
		"serve_select_total 140",
		"serve_select_latency_ns_count",
		// 2: bootDaemon's readiness probe plus driveDaemon's client.
		"serve_connections_total 2",
		"serve_devices_evicted_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "serve_select_latency_ns_bucket") {
		t.Errorf("select latency histogram has no samples on /metrics:\n%s", text)
	}

	// Let the sweeper retire the idle devices, then confirm the eviction
	// counter moves on the scrape.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if strings.Contains(scrape(), "serve_devices_evicted_total 2") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("eviction count never reached 2 on /metrics")
		}
		time.Sleep(25 * time.Millisecond)
	}

	resp, err := http.Get("http://" + debugAddr + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	var varz map[string]any
	err = json.NewDecoder(resp.Body).Decode(&varz)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/varz not JSON: %v", err)
	}
	if varz["serve_select_total"].(float64) != 140 {
		t.Fatalf("/varz serve_select_total = %v, want 140", varz["serve_select_total"])
	}

	resp, err = http.Get("http://" + debugAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}
}
