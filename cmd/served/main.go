// Command served is the bandit-as-a-service decision daemon: it holds one
// Smart EXP3 policy per device session and answers Select / Feedback over
// the framed-gob wire (internal/serve), so fleets of clients outsource
// their per-slot network choice to a process that survives them.
//
// State is per-device and seeded per-device (rngutil.ChildSeed of -seed and
// the device id), so the daemon's decisions are a deterministic function of
// its flags and the request history. With -snapshot set, the daemon
// restores that state at boot, persists it on SIGTERM/SIGINT before
// exiting, and (with -snapshot-every) checkpoints it periodically — a
// restart resumes every device's learned weights bit for bit.
//
// With -evict-idle set, a background sweep retires device sessions that
// have gone quiet — clients that vanished without Release — bounding the
// daemon's memory by its active fleet rather than its lifetime. Eviction
// does not bend determinism: an evicted device that comes back re-joins
// from its per-device root seed, exactly like a device the client released.
// -evict-every tunes the sweep cadence (default: a quarter of -evict-idle).
//
// With -debug-addr set, the daemon serves its instrumentation on a second,
// private listener: Prometheus text on /metrics, a JSON snapshot on /varz,
// and the pprof profiles on /debug/pprof/. Metrics are observation-only —
// the decisions served are bit-identical with or without the flag — and the
// hot path stays allocation-free with them enabled. -metrics-log-every adds
// a periodic structured log line of counter deltas for fleets that scrape
// logs rather than endpoints.
//
// Usage:
//
//	served                                  # listen on 127.0.0.1:9632
//	served -listen 0.0.0.0:9632 -alg smart  # serve Smart EXP3 to the network
//	served -snapshot /var/lib/served.snap -snapshot-every 5m
//	served -evict-idle 1h -evict-every 10m  # retire sessions idle > 1 hour
//	served -debug-addr 127.0.0.1:9633       # /metrics, /varz, /debug/pprof/
//	served -metrics-log-every 1m            # periodic metrics delta log line
//
// The protocol is unauthenticated and unencrypted (stdlib gob over TCP):
// run served only on networks where every peer is trusted, exactly like
// shardd.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smartexp3/internal/core"
	"smartexp3/internal/obsv"
	"smartexp3/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "served:", err)
		os.Exit(1)
	}
}

// algorithmsByName mirrors cmd/simulate's flag vocabulary, restricted to
// the EXP3 family whose policy state the serve layer can snapshot.
var algorithmsByName = map[string]core.Algorithm{
	"exp3":    core.AlgEXP3,
	"block":   core.AlgBlockEXP3,
	"hybrid":  core.AlgHybridBlockEXP3,
	"smartnr": core.AlgSmartEXP3NoReset,
	"smart":   core.AlgSmartEXP3,
}

func run(args []string) error {
	fs := flag.NewFlagSet("served", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:9632", "address to accept client connections on")
		algName  = fs.String("alg", "smart", "policy to serve: exp3|block|hybrid|smartnr|smart")
		seed     = fs.Int64("seed", 1, "root seed; device d draws from ChildSeed(seed, d)")
		shards   = fs.Int("state-shards", 0, "device-map shard count (default: 4×GOMAXPROCS, rounded to a power of two)")
		maxArms  = fs.Int("max-arms", 0, "per-request arm-set bound (default 1024)")
		snapshot = fs.String("snapshot", "", "state file: restored at boot if present, written on SIGTERM/SIGINT")
		every    = fs.Duration("snapshot-every", 0, "also checkpoint the state file at this interval (requires -snapshot)")
		evict    = fs.Duration("evict-idle", 0, "retire device sessions idle longer than this (0 disables; evicted devices re-join from their seed)")
		sweepEvy = fs.Duration("evict-every", 0, "idle-eviction sweep interval (default evict-idle/4, requires -evict-idle)")
		debug    = fs.String("debug-addr", "", "serve /metrics, /varz and /debug/pprof/ on this address (empty disables)")
		logEvery = fs.Duration("metrics-log-every", 0, "emit a structured metrics-delta log line at this interval (0 disables)")
		quiet    = fs.Bool("quiet", false, "suppress log lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	alg, ok := algorithmsByName[*algName]
	if !ok {
		return fmt.Errorf("unknown algorithm %q (want exp3|block|hybrid|smartnr|smart)", *algName)
	}
	if *every > 0 && *snapshot == "" {
		return fmt.Errorf("-snapshot-every requires -snapshot")
	}
	if *sweepEvy > 0 && *evict <= 0 {
		return fmt.Errorf("-evict-every requires -evict-idle")
	}
	if *evict > 0 && *sweepEvy <= 0 {
		if *sweepEvy = *evict / 4; *sweepEvy <= 0 {
			*sweepEvy = *evict
		}
	}

	store, err := serve.NewStore(serve.Config{
		Algorithm:  alg,
		Seed:       *seed,
		Shards:     *shards,
		MaxArms:    *maxArms,
		EvictAfter: *evict,
	})
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, "served: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	if *snapshot != "" {
		switch err := store.LoadFile(*snapshot); {
		case err == nil:
			logf("restored %d device sessions from %s", store.Devices(), *snapshot)
		case errors.Is(err, os.ErrNotExist):
			logf("no snapshot at %s, starting fresh", *snapshot)
		default:
			return err
		}
	}

	// Instrumentation is built only when something will consume it: the
	// debug listener, the periodic delta log, or both share one registry.
	var reg *obsv.Registry
	srvOpts := serve.ServerOptions{}
	if *debug != "" || *logEvery > 0 {
		reg = obsv.NewRegistry()
		store.Instrument(reg)
		srvOpts.Metrics = serve.NewServerMetrics(reg)
	}
	if *debug != "" {
		ds, err := obsv.ListenAndServe(*debug, reg)
		if err != nil {
			return err
		}
		defer ds.Close()
		logf("debug endpoints on http://%s/ (/metrics, /varz, /debug/pprof/)", ds.Addr())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := serve.NewServer(store, srvOpts)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigCh)
	// shutdown is closed before the listener, so the Serve error path below
	// can tell an orderly signal exit from a transport failure without a
	// race.
	shutdown := make(chan struct{})
	if *logEvery > 0 {
		dl := obsv.NewDeltaLogger(reg, slog.New(slog.NewTextHandler(os.Stderr, nil)))
		go dl.Run(*logEvery, shutdown)
	}
	go func() {
		var tick <-chan time.Time
		if *every > 0 {
			t := time.NewTicker(*every)
			defer t.Stop()
			tick = t.C
		}
		var sweep <-chan time.Time
		if *evict > 0 {
			t := time.NewTicker(*sweepEvy)
			defer t.Stop()
			sweep = t.C
		}
		for {
			select {
			case sig := <-sigCh:
				// Returning here also stops the eviction sweeper, so the final
				// snapshot in main sees a store no sweep is mutating: devices
				// active at the moment of the signal are flushed, not raced.
				logf("caught %v, flushing state", sig)
				close(shutdown)
				ln.Close()  // stop accepting; Serve returns
				srv.Close() // tear down live connections; Serve's drain finishes
				return
			case <-tick:
				if err := store.SaveFile(*snapshot); err != nil {
					logf("checkpoint failed: %v", err)
				} else {
					logf("checkpointed %d device sessions to %s", store.Devices(), *snapshot)
				}
			case <-sweep:
				if n := store.EvictIdle(); n > 0 {
					logf("evicted %d device sessions idle longer than %v", n, *evict)
				}
			}
		}
	}()

	logf("serving %v on %s", alg, ln.Addr())
	serveErr := srv.Serve(ln)
	select {
	case <-shutdown: // orderly exit: the listener close is ours, flush state
		if *snapshot != "" {
			if err := store.SaveFile(*snapshot); err != nil {
				return err
			}
			logf("flushed %d device sessions to %s", store.Devices(), *snapshot)
		}
		return nil
	default:
		return serveErr
	}
}
