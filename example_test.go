package smartexp3_test

import (
	"fmt"
	"math/rand"

	"smartexp3"
)

// ExampleNewPolicy drives a single Smart EXP3 policy by hand: three networks
// whose quality the device can only learn by using them. The best network
// (index 2) ends up selected in the overwhelming majority of slots.
func ExampleNewPolicy() {
	rng := rand.New(rand.NewSource(7))
	policy, err := smartexp3.NewPolicy(smartexp3.AlgSmartEXP3, []int{0, 1, 2}, rng)
	if err != nil {
		fmt.Println(err)
		return
	}
	rates := []float64{4, 7, 22} // Mbps, unknown to the device
	counts := make([]int, 3)
	for t := 0; t < 300; t++ {
		network := policy.Select()
		counts[network]++
		policy.Observe(rates[network] / 22) // gain scaled into [0,1]
	}
	fmt.Println("best network selected most:", counts[2] > 250)
	// Output:
	// best network selected most: true
}

// ExampleNashCounts computes the paper's Setting 1 equilibrium: 20 devices
// over networks of 4, 7 and 22 Mbps split (2, 4, 14).
func ExampleNashCounts() {
	counts := smartexp3.NashCounts([]float64{4, 7, 22}, 20)
	fmt.Println(counts)
	// Output:
	// [2 4 14]
}

// ExampleDistanceToNash reproduces the paper's worked example: devices
// observing 1, 1 and 4 Mbps when the equilibrium would give each 2 Mbps are
// 100% away from equilibrium.
func ExampleDistanceToNash() {
	d := smartexp3.DistanceToNash([]float64{1, 1, 4}, []float64{2, 2, 2})
	fmt.Printf("%.0f%%\n", d)
	// Output:
	// 100%
}

// ExampleSimulate runs the paper's Setting 1 population and reports whether
// the decentralized learners found the equilibrium.
func ExampleSimulate() {
	res, err := smartexp3.Simulate(smartexp3.SimConfig{
		Topology: smartexp3.Setting1(),
		Devices:  smartexp3.UniformDevices(20, smartexp3.AlgSmartEXP3NoReset),
		Slots:    1200,
		Seed:     2,
		Collect:  smartexp3.CollectOptions{Distance: true},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	late := res.Distance[900:]
	var mean float64
	for _, d := range late {
		mean += d / float64(len(late))
	}
	fmt.Println("late distance under 7.5% (the paper's ε):", mean < 7.5)
	// Output:
	// late distance under 7.5% (the paper's ε): true
}
